lib/machine/compile.ml: Array Format Isa List Printf Sexp String
