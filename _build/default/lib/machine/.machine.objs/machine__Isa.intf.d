lib/machine/isa.mli: Format Sexp
