lib/machine/machine.ml: Compile Emulator Isa
