lib/machine/emulator.mli: Core Isa Sexp
