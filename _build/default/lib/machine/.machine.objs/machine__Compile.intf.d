lib/machine/compile.mli: Isa Sexp
