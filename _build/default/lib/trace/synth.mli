(** Synthetic trace generator.

    Drives scale tests and benches without running the interpreter: a pool
    of live lists is maintained; each step draws a primitive from a
    configurable mix (Fig 3.1 shape), picks its arguments (the previous
    result with probability [chain_prob], a pool element otherwise), and
    applies real car/cdr/cons/rplac semantics so the resulting stream is a
    valid trace.  New lists are drawn with n and p from truncated geometric
    distributions matching the Chapter 3 shapes (Figs 3.3a/3.3b). *)

type config = {
  length : int;              (** primitive events to generate *)
  seed : int;
  car_w : float;             (** primitive mix weights *)
  cdr_w : float;
  cons_w : float;
  rplaca_w : float;
  rplacd_w : float;
  chain_prob : float;        (** P(argument = previous result) *)
  mean_n : float;            (** mean symbols per fresh list *)
  mean_p : float;            (** mean internal parenthesis pairs *)
  call_every : int;          (** emit a function Call/Return every k prims *)
}

(** A mix echoing the access-dominated traces of Fig 3.1. *)
val default : config

(** A cons-heavy mix (the SLANG outlier of Fig 3.1). *)
val cons_heavy : config

(** An rplac-heavy mix (the PEARL outlier of Fig 3.1). *)
val rplac_heavy : config

val generate : config -> Capture.t
