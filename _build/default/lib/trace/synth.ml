module D = Sexp.Datum

type config = {
  length : int;
  seed : int;
  car_w : float;
  cdr_w : float;
  cons_w : float;
  rplaca_w : float;
  rplacd_w : float;
  chain_prob : float;
  mean_n : float;
  mean_p : float;
  call_every : int;
}

let default =
  { length = 10_000; seed = 42; car_w = 0.40; cdr_w = 0.45; cons_w = 0.10;
    rplaca_w = 0.025; rplacd_w = 0.025; chain_prob = 0.45; mean_n = 10.;
    mean_p = 2.; call_every = 6 }

let cons_heavy =
  { default with car_w = 0.25; cdr_w = 0.30; cons_w = 0.40; rplaca_w = 0.025;
                 rplacd_w = 0.025; chain_prob = 0.25 }

let rplac_heavy =
  { default with car_w = 0.25; cdr_w = 0.25; cons_w = 0.10; rplaca_w = 0.20;
                 rplacd_w = 0.20; chain_prob = 0.05 }

(* Truncated geometric with the given mean, >= min_v. *)
let geometric rng ~mean ~min_v =
  if mean <= float_of_int min_v then min_v
  else begin
    let p = 1. /. (mean -. float_of_int min_v +. 1.) in
    let rec go k = if k > 200 || Util.Rng.bool rng ~p then k else go (k + 1) in
    go min_v
  end

let fresh_atom counter rng =
  incr counter;
  if Util.Rng.bool rng ~p:0.3 then D.Int (Util.Rng.int rng 1000)
  else D.Sym (Printf.sprintf "g%d" !counter)

(* A fresh list with ~n atoms and ~p internal parenthesis pairs: start flat,
   then wrap p random slices into sublists. *)
let fresh_list counter rng ~mean_n ~mean_p =
  let n = geometric rng ~mean:mean_n ~min_v:1 in
  let p = geometric rng ~mean:mean_p ~min_v:0 in
  let items = ref (List.init n (fun _ -> fresh_atom counter rng)) in
  for _ = 1 to p do
    let len = List.length !items in
    if len >= 1 then begin
      let start = Util.Rng.int rng len in
      let span = 1 + Util.Rng.int rng (max 1 (len - start)) in
      let before = List.filteri (fun i _ -> i < start) !items in
      let inside = List.filteri (fun i _ -> i >= start && i < start + span) !items in
      let after = List.filteri (fun i _ -> i >= start + span) !items in
      items := before @ [ D.list inside ] @ after
    end
  done;
  D.list !items

let generate cfg =
  let rng = Util.Rng.create ~seed:cfg.seed in
  let counter = ref 0 in
  let capture = Capture.create () in
  let pool = Array.make 256 D.Nil in
  let pool_used = ref 0 in
  let add_to_pool d =
    match d with
    | D.Cons _ ->
      if !pool_used < Array.length pool then begin
        pool.(!pool_used) <- d;
        incr pool_used
      end
      else pool.(Util.Rng.int rng (Array.length pool)) <- d
    | _ -> ()
  in
  let fresh () =
    let l = fresh_list counter rng ~mean_n:cfg.mean_n ~mean_p:cfg.mean_p in
    add_to_pool l;
    l
  in
  (* Seed the pool. *)
  for _ = 1 to 16 do ignore (fresh ()) done;
  let prev_result = ref D.Nil in
  let pick_list () =
    match !prev_result with
    | D.Cons _ when Util.Rng.bool rng ~p:cfg.chain_prob -> !prev_result
    | _ ->
      let d = pool.(Util.Rng.int rng !pool_used) in
      (match d with D.Cons _ -> d | _ -> fresh ())
  in
  let depth = ref 0 in
  let maybe_call () =
    if cfg.call_every > 0 && Util.Rng.int rng cfg.call_every = 0 then begin
      if !depth > 0 && Util.Rng.bool rng ~p:0.5 then begin
        decr depth;
        Capture.record capture (Event.Return { name = Printf.sprintf "f%d" !depth })
      end
      else if !depth < 24 then begin
        Capture.record capture
          (Event.Call { name = Printf.sprintf "f%d" !depth;
                        nargs = 1 + Util.Rng.int rng 3 });
        incr depth
      end
    end
  in
  let weights = [| cfg.car_w; cfg.cdr_w; cfg.cons_w; cfg.rplaca_w; cfg.rplacd_w |] in
  for _ = 1 to cfg.length do
    maybe_call ();
    let prim = List.nth Event.all_prims (Util.Rng.weighted rng weights) in
    let event =
      match prim with
      | Event.Car ->
        let arg = pick_list () in
        let result = D.car arg in
        Event.Prim { prim; args = [ arg ]; result }
      | Event.Cdr ->
        let arg = pick_list () in
        let result = D.cdr arg in
        Event.Prim { prim; args = [ arg ]; result }
      | Event.Cons ->
        let head =
          if Util.Rng.bool rng ~p:0.5 then pick_list () else fresh_atom counter rng
        in
        let tail = pick_list () in
        let result = D.cons head tail in
        Event.Prim { prim; args = [ head; tail ]; result }
      | Event.Rplaca ->
        let arg = pick_list () in
        let v = fresh_atom counter rng in
        let result = D.cons v (D.cdr arg) in
        Event.Prim { prim; args = [ arg; v ]; result }
      | Event.Rplacd ->
        let arg = pick_list () in
        let tail = pick_list () in
        let result = D.cons (D.car arg) tail in
        Event.Prim { prim; args = [ arg; tail ]; result }
    in
    (match event with
     | Event.Prim { result; _ } ->
       prev_result := result;
       add_to_pool result
     | _ -> ());
    Capture.record capture event
  done;
  while !depth > 0 do
    decr depth;
    Capture.record capture (Event.Return { name = Printf.sprintf "f%d" !depth })
  done;
  capture
