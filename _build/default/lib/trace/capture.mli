(** In-memory trace builder and whole-trace statistics (Table 5.1). *)

type t

val create : unit -> t

val record : t -> Event.t -> unit

(** Events in capture order. *)
val events : t -> Event.t array

(** Number of events recorded. *)
val length : t -> int

type stats = {
  functions : int;      (** user-defined function calls *)
  primitives : int;     (** traced list-primitive calls *)
  max_depth : int;      (** maximum dynamic nesting of function calls *)
}

(** The Table 5.1 characterisation of a trace. *)
val stats : t -> stats
