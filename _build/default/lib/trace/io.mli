(** Trace serialisation: one datum per line, round-trippable.

    Events are written as s-expressions:
    - [(p <prim> (<args>...) <result>)]
    - [(c <name> <nargs>)]
    - [(r <name>)] *)

val event_to_datum : Event.t -> Sexp.Datum.t

(** @raise Invalid_argument on a malformed event datum. *)
val event_of_datum : Sexp.Datum.t -> Event.t

val write_channel : out_channel -> Capture.t -> unit
val read_channel : in_channel -> Capture.t

val save : string -> Capture.t -> unit
val load : string -> Capture.t
