type t = {
  mutable events : Event.t array;
  mutable len : int;
}

let create () = { events = Array.make 1024 (Event.Return { name = "" }); len = 0 }

let record t e =
  if t.len = Array.length t.events then begin
    let grown = Array.make (2 * t.len) e in
    Array.blit t.events 0 grown 0 t.len;
    t.events <- grown
  end;
  t.events.(t.len) <- e;
  t.len <- t.len + 1

let events t = Array.sub t.events 0 t.len

let length t = t.len

type stats = {
  functions : int;
  primitives : int;
  max_depth : int;
}

let stats t =
  let functions = ref 0 and primitives = ref 0 in
  let depth = ref 0 and max_depth = ref 0 in
  for i = 0 to t.len - 1 do
    match t.events.(i) with
    | Event.Prim _ -> incr primitives
    | Event.Call _ ->
      incr functions;
      incr depth;
      if !depth > !max_depth then max_depth := !depth
    | Event.Return _ -> decr depth
  done;
  { functions = !functions; primitives = !primitives; max_depth = !max_depth }
