type arg =
  | Atom of Sexp.Datum.t
  | List of { id : int; chained : bool }

type pevent =
  | Pprim of {
      prim : Event.prim;
      args : arg list;
      result : arg;
    }
  | Pcall of { name : string; nargs : int }
  | Preturn of { name : string }

type t = {
  events : pevent array;
  distinct_lists : int;
  stats : Capture.stats;
  np_by_id : (int * int) array;
}

module Dtbl = Hashtbl.Make (struct
    type t = Sexp.Datum.t

    let equal = Sexp.Datum.equal
    let hash = Sexp.Datum.hash
  end)

let run capture =
  (* [ids] maps a list's s-expression form to the id of the most recently
     created object of that shape: structurally identical arguments are
     assumed to be that latest object (the thesis's assumption), but a
     cons (or rplac) *result* is always a fresh cell, however familiar it
     looks — without this, recurring small numeric lists stitch unrelated
     structures together. *)
  let ids = Dtbl.create 1024 in
  let nps = ref [] in
  let next = ref 0 in
  let fresh_id d =
    let id = !next in
    incr next;
    Dtbl.replace ids d id;
    nps := Sexp.Metrics.np d :: !nps;
    id
  in
  let id_of d =
    match Dtbl.find_opt ids d with
    | Some id -> id
    | None -> fresh_id d
  in
  (* The previous primitive's list result id, for the chaining flag. *)
  let prev_result = ref None in
  let classify prev (d : Sexp.Datum.t) =
    match d with
    | Cons _ ->
      let id = id_of d in
      List { id; chained = prev = Some id }
    | Nil | Sym _ | Int _ | Str _ -> Atom d
  in
  let classify_result (prim : Event.prim) (d : Sexp.Datum.t) =
    match d, prim with
    | Cons _, (Event.Cons | Event.Rplaca | Event.Rplacd) ->
      List { id = fresh_id d; chained = false }
    | _, _ -> classify None d
  in
  let events =
    Array.map
      (fun (e : Event.t) ->
         match e with
         | Call { name; nargs } -> Pcall { name; nargs }
         | Return { name } -> Preturn { name }
         | Prim { prim; args; result } ->
           let prev = !prev_result in
           let args = List.map (classify prev) args in
           let result = classify_result prim result in
           prev_result := (match result with List { id; _ } -> Some id | Atom _ -> None);
           Pprim { prim; args; result })
      (Capture.events capture)
  in
  {
    events;
    distinct_lists = !next;
    stats = Capture.stats capture;
    np_by_id = Array.of_list (List.rev !nps);
  }

let prim_refs t =
  let refs = ref [] in
  Array.iter
    (function
      | Pprim { args; result; _ } ->
        List.iter (function List { id; _ } -> refs := id :: !refs | Atom _ -> ()) args;
        (match result with List { id; _ } -> refs := id :: !refs | Atom _ -> ())
      | Pcall _ | Preturn _ -> ())
    t.events;
  Array.of_list (List.rev !refs)
