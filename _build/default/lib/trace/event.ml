type prim =
  | Car
  | Cdr
  | Cons
  | Rplaca
  | Rplacd

let prim_name = function
  | Car -> "car"
  | Cdr -> "cdr"
  | Cons -> "cons"
  | Rplaca -> "rplaca"
  | Rplacd -> "rplacd"

let prim_of_name = function
  | "car" -> Some Car
  | "cdr" -> Some Cdr
  | "cons" -> Some Cons
  | "rplaca" -> Some Rplaca
  | "rplacd" -> Some Rplacd
  | _ -> None

let all_prims = [ Car; Cdr; Cons; Rplaca; Rplacd ]

type t =
  | Prim of {
      prim : prim;
      args : Sexp.Datum.t list;
      result : Sexp.Datum.t;
    }
  | Call of { name : string; nargs : int }
  | Return of { name : string }

let pp ppf = function
  | Prim { prim; args; result } ->
    Format.fprintf ppf "(%s%a) -> %a" (prim_name prim)
      (fun ppf args ->
         List.iter (fun a -> Format.fprintf ppf " %a" Sexp.pp a) args)
      args Sexp.pp result
  | Call { name; nargs } -> Format.fprintf ppf "call %s/%d" name nargs
  | Return { name } -> Format.fprintf ppf "return %s" name
