(** Trace events, as captured from an instrumented interpreter run
    (§3.3.1, §5.2.1).

    The trace records (a) each list-manipulating primitive call with its
    name and s-expression arguments and result, and (b) entry to and exit
    from each user-defined function with its argument count — exactly the
    information the thesis's modified Franz Lisp interpreter wrote to its
    trace files. *)

type prim =
  | Car
  | Cdr
  | Cons
  | Rplaca
  | Rplacd

val prim_name : prim -> string
val prim_of_name : string -> prim option

(** [all_prims] in a canonical order (for histogram axes). *)
val all_prims : prim list

type t =
  | Prim of {
      prim : prim;
      args : Sexp.Datum.t list;   (** list arguments, in s-expression form *)
      result : Sexp.Datum.t;      (** the value returned *)
    }
  | Call of { name : string; nargs : int }
  | Return of { name : string }

val pp : Format.formatter -> t -> unit
