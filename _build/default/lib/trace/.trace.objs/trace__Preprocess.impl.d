lib/trace/preprocess.ml: Array Capture Event Hashtbl List Sexp
