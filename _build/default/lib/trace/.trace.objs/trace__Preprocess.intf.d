lib/trace/preprocess.mli: Capture Event Sexp
