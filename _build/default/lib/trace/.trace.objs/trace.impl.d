lib/trace/trace.ml: Capture Event Io Preprocess Synth
