lib/trace/synth.ml: Array Capture Event List Printf Sexp Util
