lib/trace/io.ml: Array Capture Event Fun Sexp String
