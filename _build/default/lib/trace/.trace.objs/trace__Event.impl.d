lib/trace/event.ml: Format List Sexp
