lib/trace/synth.mli: Capture
