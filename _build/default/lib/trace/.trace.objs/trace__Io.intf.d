lib/trace/io.mli: Capture Event Sexp
