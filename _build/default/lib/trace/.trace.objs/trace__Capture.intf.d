lib/trace/capture.mli: Event
