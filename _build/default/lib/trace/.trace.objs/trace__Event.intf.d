lib/trace/event.mli: Format Sexp
