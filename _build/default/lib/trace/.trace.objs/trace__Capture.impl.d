lib/trace/capture.ml: Array Event
