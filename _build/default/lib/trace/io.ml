module D = Sexp.Datum

let event_to_datum (e : Event.t) : D.t =
  match e with
  | Prim { prim; args; result } ->
    D.list [ D.sym "p"; D.sym (Event.prim_name prim); D.list args; result ]
  | Call { name; nargs } -> D.list [ D.sym "c"; D.sym name; D.int nargs ]
  | Return { name } -> D.list [ D.sym "r"; D.sym name ]

let event_of_datum (d : D.t) : Event.t =
  match d with
  | Cons (Sym "p", Cons (Sym prim, Cons (args, Cons (result, Nil)))) ->
    (match Event.prim_of_name prim with
     | Some prim -> Prim { prim; args = D.to_list args; result }
     | None -> invalid_arg ("Trace.Io: unknown primitive " ^ prim))
  | Cons (Sym "c", Cons (Sym name, Cons (Int nargs, Nil))) -> Call { name; nargs }
  | Cons (Sym "r", Cons (Sym name, Nil)) -> Return { name }
  | _ -> invalid_arg "Trace.Io: malformed event"

let write_channel oc capture =
  Array.iter
    (fun e ->
       output_string oc (Sexp.to_string (event_to_datum e));
       output_char oc '\n')
    (Capture.events capture)

let read_channel ic =
  let capture = Capture.create () in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         Capture.record capture (event_of_datum (Sexp.parse line))
     done
   with End_of_file -> ());
  capture

let save path capture =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc capture)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
