lib/multilisp/multilisp.ml: Cluster Futures Refweight
