lib/multilisp/cluster.ml: Array Core Hashtbl List Option Printf Sexp
