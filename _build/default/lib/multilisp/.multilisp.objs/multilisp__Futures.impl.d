lib/multilisp/futures.ml: List Sexp
