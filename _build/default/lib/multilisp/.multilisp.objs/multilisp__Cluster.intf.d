lib/multilisp/cluster.mli: Core Sexp
