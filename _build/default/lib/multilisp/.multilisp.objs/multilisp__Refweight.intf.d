lib/multilisp/refweight.mli:
