lib/multilisp/futures.mli: Sexp
