lib/multilisp/refweight.ml: Hashtbl List
