module D = Sexp.Datum

let initial_weight = 1 lsl 16

type handle = {
  holder : int;
  h_owner : int;
  id : int;                 (* LPT identifier at the owner node *)
  mutable weight : int;
  mutable dropped : bool;
}

type part =
  | Ref of handle
  | Imm of D.t

type queue_entry = { q_key : int * int; mutable amount : int }

type t = {
  lps : Core.Lp.t array;
  combining : bool;
  flush_at : int;
  (* outstanding weight per object (owner, id); the owner's Lp retention
     is held while this is positive *)
  totals : (int * int, int) Hashtbl.t;
  (* remote children embedded in cons cells, keyed by their unique
     placeholder symbol *)
  proxies : (string, handle) Hashtbl.t;
  mutable proxy_counter : int;
  queues : (int * int, queue_entry list ref) Hashtbl.t;
  mutable messages : int;
  mutable remote_accesses : int;
  mutable local_accesses : int;
  mutable weight_refills : int;
}

let create ?(lpt_size = 512) ?(flush_at = 8) ~nodes ~combining () =
  if nodes <= 0 then invalid_arg "Cluster.create: need at least one node";
  { lps = Array.init nodes (fun _ -> Core.Lp.create ~lpt_size ());
    combining; flush_at;
    totals = Hashtbl.create 64; proxies = Hashtbl.create 16; proxy_counter = 0;
    queues = Hashtbl.create 16;
    messages = 0; remote_accesses = 0; local_accesses = 0; weight_refills = 0 }

let nodes t = Array.length t.lps
let lp t node = t.lps.(node)

let holder h = h.holder
let owner _t h = h.h_owner

let send_msg t ~from ~target = if from <> target then t.messages <- t.messages + 1

(* ---- weight accounting at the owner ---- *)

let total t key = Option.value ~default:0 (Hashtbl.find_opt t.totals key)

(* Issue a fresh weighted handle for object (owner, id) to [holder]:
   purely owner-local bookkeeping. *)
let issue t ~owner ~id ~holder =
  let key = (owner, id) in
  let existing = total t key in
  if existing = 0 then Core.Lp.retain (lp t owner) id;  (* the weight anchor *)
  Hashtbl.replace t.totals key (existing + initial_weight);
  { holder; h_owner = owner; id; weight = initial_weight; dropped = false }

let deliver t key amount =
  let remaining = total t key - amount in
  Hashtbl.replace t.totals key remaining;
  if remaining <= 0 then begin
    Hashtbl.remove t.totals key;
    let o, id = key in
    Core.Lp.release (lp t o) id
  end

let queue_for t ~from ~target =
  match Hashtbl.find_opt t.queues (from, target) with
  | Some q -> q
  | None ->
    let q = ref [] in
    Hashtbl.replace t.queues (from, target) q;
    q

let flush_link t ~from ~target =
  let q = queue_for t ~from ~target in
  List.iter
    (fun e ->
       send_msg t ~from ~target;
       deliver t e.q_key e.amount)
    !q;
  q := []

let return_weight t ~from key amount =
  let target = fst key in
  if from = target then deliver t key amount
  else if not t.combining then begin
    send_msg t ~from ~target;
    deliver t key amount
  end
  else begin
    let q = queue_for t ~from ~target in
    (match List.find_opt (fun e -> e.q_key = key) !q with
     | Some e -> e.amount <- e.amount + amount
     | None -> q := { q_key = key; amount } :: !q);
    if List.length !q >= t.flush_at then flush_link t ~from ~target
  end

let flush t =
  let links = Hashtbl.fold (fun (f, g) _ acc -> (f, g) :: acc) t.queues [] in
  List.iter (fun (from, target) -> flush_link t ~from ~target) links

(* ---- references ---- *)

let check h name =
  if h.dropped then invalid_arg (Printf.sprintf "Cluster.%s: dropped handle" name)

let read_in t ~node d =
  let id = Core.Lp.read_in (lp t node) d in
  (* read_in retained once; transfer that retention to the weight anchor *)
  let key = (node, id) in
  Hashtbl.replace t.totals key initial_weight;
  { holder = node; h_owner = node; id; weight = initial_weight; dropped = false }

let send t h ~to_node =
  check h "send";
  if h.weight <= 1 then begin
    (* exhausted: ask the owner for more weight *)
    send_msg t ~from:h.holder ~target:h.h_owner;
    t.weight_refills <- t.weight_refills + 1;
    let key = (h.h_owner, h.id) in
    Hashtbl.replace t.totals key (total t key + initial_weight);
    h.weight <- h.weight + initial_weight
  end;
  let half = h.weight / 2 in
  h.weight <- h.weight - half;
  { holder = to_node; h_owner = h.h_owner; id = h.id; weight = half; dropped = false }

let drop t h =
  check h "drop";
  h.dropped <- true;
  return_weight t ~from:h.holder (h.h_owner, h.id) h.weight

(* ---- access ---- *)

let placeholder t =
  t.proxy_counter <- t.proxy_counter + 1;
  Printf.sprintf "<remote%d>" t.proxy_counter

let part_of_lp t ~owner = function
  | Core.Lp.Obj id -> Ref (issue t ~owner ~id ~holder:owner)
  | Core.Lp.Val d -> Imm d

let access t h ~field =
  check h "car/cdr";
  let o = h.h_owner in
  let local = h.holder = o in
  if local then t.local_accesses <- t.local_accesses + 1
  else begin
    t.remote_accesses <- t.remote_accesses + 1;
    (* request + reply *)
    send_msg t ~from:h.holder ~target:o;
    send_msg t ~from:o ~target:h.holder
  end;
  let part =
    match field with
    | `Car -> Core.Lp.car (lp t o) h.id
    | `Cdr -> Core.Lp.cdr (lp t o) h.id
  in
  match part_of_lp t ~owner:o part with
  | Ref r -> Ref { r with holder = h.holder }   (* shipped to the requester *)
  | Imm d -> Imm d

let car t h = access t h ~field:`Car
let cdr t h = access t h ~field:`Cdr

let cons t ~at a d =
  (* a cross-node child is embedded as a unique proxy atom; the local
     node holds a weighted handle to it (the Fig 6.4 weight field) *)
  let lp_part = function
    | Imm v -> (Core.Lp.Val v, None)
    | Ref r when r.h_owner = at -> (Core.Lp.Obj r.id, None)
    | Ref r ->
      let sym = placeholder t in
      (Core.Lp.Val (D.Sym sym), Some (sym, r))
  in
  let pa, ra = lp_part a in
  let pd, rd = lp_part d in
  let id = Core.Lp.cons (lp t at) pa pd in
  let register = function
    | Some (sym, r) -> Hashtbl.replace t.proxies sym (send t r ~to_node:at)
    | None -> ()
  in
  register ra;
  register rd;
  (* transfer the cons retention to the weight anchor *)
  let key = (at, id) in
  Hashtbl.replace t.totals key initial_weight;
  { holder = at; h_owner = at; id; weight = initial_weight; dropped = false }

let rec externalize t h =
  check h "externalize";
  let o = h.h_owner in
  if h.holder <> o then begin
    (* fetch the whole value: request + reply *)
    send_msg t ~from:h.holder ~target:o;
    send_msg t ~from:o ~target:h.holder
  end;
  let raw = Core.Lp.externalize (lp t o) h.id in
  (* substitute remote-child proxies (recursively fetching them) *)
  let rec subst (d : D.t) =
    match d with
    | Sym s ->
      (match Hashtbl.find_opt t.proxies s with
       | Some r -> externalize t r
       | None -> d)
    | Cons (a, x) -> D.Cons (subst a, subst x)
    | Nil | Int _ | Str _ -> d
  in
  subst raw

type counters = {
  messages : int;
  remote_accesses : int;
  local_accesses : int;
  weight_refills : int;
}

let counters (t : t) =
  { messages = t.messages; remote_accesses = t.remote_accesses;
    local_accesses = t.local_accesses; weight_refills = t.weight_refills }

let node_lpt t node = Core.Lp.lpt_counters (lp t node)
