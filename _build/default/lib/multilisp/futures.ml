type task = {
  cost : int;
  subtasks : task list;
}

let leaf cost = { cost; subtasks = [] }
let node cost subtasks = { cost; subtasks }

let rec sequential_time t =
  t.cost + List.fold_left (fun acc s -> acc + sequential_time s) 0 t.subtasks

let rec critical_path t =
  t.cost + List.fold_left (fun acc s -> max acc (critical_path s)) 0 t.subtasks

(* Greedy list scheduling by levels: a task becomes ready when all its
   subtasks have completed.  We simulate with an event loop over [p]
   workers picking the ready task with the longest remaining critical
   path (a standard LPT-style heuristic). *)
let makespan t ~processors =
  if processors < 1 then invalid_arg "Futures.makespan: processors >= 1";
  (* Flatten into nodes with dependency counts. *)
  let module N = struct
    type n = {
      cost : int;
      mutable waiting : int;          (* unfinished subtasks *)
      mutable parent : n option;
      path : int;                     (* critical path through this node *)
    }
  end in
  let open N in
  let ready = ref [] in
  let rec build parent (tk : task) =
    let n =
      { cost = tk.cost; waiting = List.length tk.subtasks; parent;
        path = critical_path tk }
    in
    List.iter (fun s -> ignore (build (Some n) s)) tk.subtasks;
    if n.waiting = 0 then ready := n :: !ready;
    n
  in
  let _root = build None t in
  let running = ref [] in  (* (finish_time, node) *)
  let clock = ref 0 in
  let finished_total = ref 0 in
  ignore finished_total;
  let pick () =
    match List.sort (fun a b -> compare b.path a.path) !ready with
    | [] -> None
    | best :: rest ->
      ready := rest;
      Some best
  in
  let result = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    (* start as many ready tasks as idle processors allow *)
    let idle = processors - List.length !running in
    for _ = 1 to idle do
      match pick () with
      | Some n -> running := (!clock + n.cost, n) :: !running
      | None -> ()
    done;
    match !running with
    | [] -> continue_ := false
    | running_now ->
      (* advance to the earliest completion *)
      let finish, done_node =
        List.fold_left
          (fun (bf, bn) (f, n) -> if f < bf then (f, n) else (bf, bn))
          (List.hd running_now) (List.tl running_now)
      in
      clock := finish;
      result := max !result finish;
      running := List.filter (fun (_, n) -> not (n == done_node)) !running;
      (match done_node.parent with
       | Some p ->
         p.waiting <- p.waiting - 1;
         if p.waiting = 0 then ready := p :: !ready
       | None -> ())
  done;
  !result

let speedup t ~processors =
  let seq = sequential_time t in
  let par = makespan t ~processors in
  if par = 0 then 1. else float_of_int seq /. float_of_int par

let rec of_expr ?(call_cost = 3) ?(prim_cost = 1) (d : Sexp.Datum.t) =
  match d with
  | Nil | Sym _ | Int _ | Str _ -> leaf prim_cost
  | Cons _ ->
    let args =
      try Sexp.Datum.to_list d
      with Invalid_argument _ -> [ Sexp.Datum.car d; Sexp.Datum.cdr d ]
    in
    node call_cost (List.map (of_expr ~call_cost ~prim_cost) args)
