(** Chapter 6's SMALL Multilisp extensions: distributed reference
    management by reference weighting with combining queues
    (Figures 6.2–6.6), and a future-based parallel evaluation model for
    speedup estimation. *)

module Refweight = Refweight
module Cluster = Cluster
module Futures = Futures
