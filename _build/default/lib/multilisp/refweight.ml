type scheme =
  | Naive
  | Weighted

(* The initial weight handed to a creating reference. *)
let initial_weight = 1 lsl 16

type obj_state = {
  owner : int;
  mutable total : int;   (* Naive: reference count; Weighted: outstanding weight *)
  mutable dead : bool;
  id : int;
}

type obj = obj_state

type reference = {
  obj : obj_state;
  holder : int;
  mutable weight : int;  (* always 1 under Naive *)
  mutable dropped : bool;
}

type queue_entry = { q_obj : obj_state; mutable amount : int }

type t = {
  nodes : int;
  scheme : scheme;
  combining : bool;
  flush_at : int;
  queues : (int * int, queue_entry list ref) Hashtbl.t;  (* (from, to) links *)
  mutable live_refs : reference list;   (* for the extant-weight invariant *)
  mutable messages : int;
  mutable next_id : int;
}

let create ?(flush_at = 8) ~nodes ~scheme ~combining () =
  if nodes <= 0 then invalid_arg "Refweight.create: need at least one node";
  { nodes; scheme; combining; flush_at; queues = Hashtbl.create 16; live_refs = [];
    messages = 0; next_id = 0 }

let send t ~from ~target = if from <> target then t.messages <- t.messages + 1

let deliver obj amount =
  obj.total <- obj.total - amount;
  if obj.total <= 0 then obj.dead <- true

let queue_for t ~from ~target =
  match Hashtbl.find_opt t.queues (from, target) with
  | Some q -> q
  | None ->
    let q = ref [] in
    Hashtbl.replace t.queues (from, target) q;
    q

let flush_link t ~from ~target =
  let q = queue_for t ~from ~target in
  (* one message per distinct object: the point of combining (Fig 6.6) *)
  List.iter
    (fun e ->
       send t ~from ~target;
       deliver e.q_obj e.amount)
    !q;
  q := []

(* An owner-bound return of [amount] weight (or one count under Naive). *)
let owner_update t ~from obj amount =
  if from = obj.owner then deliver obj amount
  else if not t.combining then begin
    send t ~from ~target:obj.owner;
    deliver obj amount
  end
  else begin
    let q = queue_for t ~from ~target:obj.owner in
    (match List.find_opt (fun e -> e.q_obj == obj) !q with
     | Some e -> e.amount <- e.amount + amount  (* combined: no extra message *)
     | None -> q := { q_obj = obj; amount } :: !q);
    if List.length !q >= t.flush_at then flush_link t ~from ~target:obj.owner
  end

let create_object t ~node =
  if node < 0 || node >= t.nodes then invalid_arg "Refweight.create_object: bad node";
  t.next_id <- t.next_id + 1;
  let weight = match t.scheme with Naive -> 1 | Weighted -> initial_weight in
  let obj = { owner = node; total = weight; dead = false; id = t.next_id } in
  let r = { obj; holder = node; weight; dropped = false } in
  t.live_refs <- r :: t.live_refs;
  (obj, r)

let copy_ref t r ~to_node =
  if r.dropped then invalid_arg "Refweight.copy_ref: reference was dropped";
  if to_node < 0 || to_node >= t.nodes then invalid_arg "Refweight.copy_ref: bad node";
  let copy =
    match t.scheme with
    | Naive ->
      (* every copy is an increment message to the owner (Fig 6.2) *)
      send t ~from:r.holder ~target:r.obj.owner;
      r.obj.total <- r.obj.total + 1;
      { obj = r.obj; holder = to_node; weight = 1; dropped = false }
    | Weighted ->
      if r.weight <= 1 then begin
        (* exhausted: request fresh weight from the owner — the only
           copy-time message the weighted scheme ever sends *)
        send t ~from:r.holder ~target:r.obj.owner;
        r.obj.total <- r.obj.total + initial_weight;
        r.weight <- r.weight + initial_weight
      end;
      let half = r.weight / 2 in
      r.weight <- r.weight - half;
      { obj = r.obj; holder = to_node; weight = half; dropped = false }
  in
  t.live_refs <- copy :: t.live_refs;
  copy

let drop_ref t r =
  if r.dropped then invalid_arg "Refweight.drop_ref: double drop";
  r.dropped <- true;
  t.live_refs <- List.filter (fun r' -> not (r' == r)) t.live_refs;
  owner_update t ~from:r.holder r.obj r.weight

let flush t =
  let links = Hashtbl.fold (fun (f, g) _ acc -> (f, g) :: acc) t.queues [] in
  List.iter (fun (from, target) -> flush_link t ~from ~target) links

let alive _t obj = not obj.dead

let messages t = t.messages

let owner_total _t obj = obj.total

let extant_weight t obj =
  List.fold_left
    (fun acc r -> if r.obj == obj && not r.dropped then acc + r.weight else acc)
    0 t.live_refs
