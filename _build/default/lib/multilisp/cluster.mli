(** A SMALL Multilisp system (§6.3, Figures 6.1, 6.4, 6.5).

    Each node is a complete SMALL: an Evaluation Processor with its own
    List Processor and LPT (Figure 6.1).  List objects live in their
    owner node's table; other nodes hold {e remote references} — (node,
    identifier) pairs carrying a reference {e weight} (the extended LPT
    entry of Figure 6.4).  Operations on a remote object cross the
    interconnect:

    - [remote_car]/[remote_cdr] send a request to the owner, which
      performs the access on its LPT and replies with a part — either an
      immediate atom or a fresh remote reference (non-local copying,
      Figure 6.5: the owner splits weight off for the requester without
      touching the count);
    - copying a reference between nodes splits its weight locally, no
      message;
    - dropping one returns its weight, through the node's combining
      queue when enabled (Figure 6.6).

    Message and hop counters expose the communication cost the chapter
    reasons about. *)

type t

type handle
(** A reference some node holds to a (possibly remote) list object. *)

(** [create ~nodes ~combining ()] — [nodes] complete SMALL nodes, each
    with its own LPT of [lpt_size] entries (default 512). *)
val create : ?lpt_size:int -> ?flush_at:int -> nodes:int -> combining:bool -> unit -> t

val nodes : t -> int

(** [read_in t ~node d] loads list [d] at [node]; the handle is held by
    [node].  @raise Invalid_argument on atoms. *)
val read_in : t -> node:int -> Sexp.Datum.t -> handle

(** Where the handle is held, and where its object lives. *)
val holder : handle -> int

val owner : t -> handle -> int

type part =
  | Ref of handle                (** another (possibly remote) object *)
  | Imm of Sexp.Datum.t          (** an immediate atom, shipped by value *)

(** [car t h] / [cdr t h]: local table access when the holder owns the
    object, a request/reply message pair otherwise.  The returned handle
    is held by [h]'s holder. *)
val car : t -> handle -> part

val cdr : t -> handle -> part

(** [cons t ~at a d]: builds at node [at]; list parts that live elsewhere
    stay remote children (the endo-structure spans nodes). *)
val cons : t -> at:int -> part -> part -> handle

(** [send t h ~to_node] hands a copy of [h] to another node by splitting
    its weight — no message to the owner (Fig 6.5). *)
val send : t -> handle -> to_node:int -> handle

(** [drop t h] discards a handle, returning its weight to the owner. *)
val drop : t -> handle -> unit

(** [externalize t h] reconstructs the whole s-expression, fetching
    remote parts as needed (counts messages). *)
val externalize : t -> handle -> Sexp.Datum.t

(** Drain every combining queue. *)
val flush : t -> unit

type counters = {
  messages : int;        (** request/reply/weight messages that crossed nodes *)
  remote_accesses : int; (** car/cdr served by a non-holder node *)
  local_accesses : int;
  weight_refills : int;  (** exhausted-weight messages *)
}

val counters : t -> counters

(** Per-node LPT counters (the Fig 6.1 node's LP). *)
val node_lpt : t -> int -> Core.Lpt.counters
