(** Future-based parallel evaluation model (§6.2, after Halstead's
    Multilisp).

    A Multilisp [pcall]/[future] annotation turns argument evaluation
    into a task tree: a task's subtasks (its arguments) may run in
    parallel, and the task body runs once all of them have resolved.
    This module computes, for such a tree, the sequential time, the
    critical-path time (unbounded processors) and a greedy list-schedule
    makespan on [p] processors — the speedup bounds a SMALL Multilisp
    could reach on the workload. *)

type task = {
  cost : int;            (** body evaluation time after arguments resolve *)
  subtasks : task list;  (** argument evaluations, forkable *)
}

val leaf : int -> task
val node : int -> task list -> task

(** Total work: sum of all costs. *)
val sequential_time : task -> int

(** Critical path: unbounded-processor makespan. *)
val critical_path : task -> int

(** [makespan task ~processors] greedy-schedules ready tasks onto [p]
    processors (arguments before bodies); [p >= 1].  Between
    [critical_path] and [sequential_time]. *)
val makespan : task -> processors:int -> int

val speedup : task -> processors:int -> float

(** [of_expr ?call_cost ?prim_cost d] derives a task tree from an
    s-expression viewed as nested calls: each list is a call whose
    arguments are its elements' trees. *)
val of_expr : ?call_cost:int -> ?prim_cost:int -> Sexp.Datum.t -> task
