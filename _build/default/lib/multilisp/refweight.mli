(** Distributed reference management for a SMALL Multilisp (§6.3,
    Figures 6.2–6.6).

    Plain reference counting breaks down in a multiprocessor: every copy
    or deletion of a remote reference is a message to the owning node,
    and increment/decrement messages can race (Figure 6.2).  {e Reference
    weighting} (Figure 6.3) fixes both: each reference carries a weight
    and the owner records only the object's total; copying a reference
    splits its weight locally (no message, no race), deleting one returns
    its weight to the owner.  A reference whose weight has dwindled to 1
    must request fresh weight from the owner — the only copy-time message
    left.  Per-link {e combining queues} (Figure 6.6) batch weight
    returns, merging updates to the same object into one message.

    The simulator runs both schemes over the same operation stream so
    message counts can be compared (bench [ablation.weights]). *)

type scheme =
  | Naive              (** count updates at the owner on every copy/drop *)
  | Weighted           (** reference weights, message-free local copies *)

type t

type obj
type reference

(** [create ~nodes ~scheme ~combining] builds an idle [nodes]-node
    system.  [combining] batches owner-bound messages per link (only
    meaningful under [Weighted]; a batch is flushed when it holds
    [flush_at] updates, merging same-object entries). *)
val create : ?flush_at:int -> nodes:int -> scheme:scheme -> combining:bool -> unit -> t

(** [create_object t ~node] makes an object owned by [node], returning
    its creating reference (held at [node]). *)
val create_object : t -> node:int -> obj * reference

(** [copy_ref t r ~to_node] hands a copy of [r] to [to_node] (Fig 6.5's
    non-local copying). *)
val copy_ref : t -> reference -> to_node:int -> reference

(** [drop_ref t r] discards a reference.  Dropping twice is an error. *)
val drop_ref : t -> reference -> unit

(** [flush t] drains every combining queue (end-of-run accounting). *)
val flush : t -> unit

(** An object is dead once every reference is gone (after [flush]). *)
val alive : t -> obj -> bool

(** Messages that crossed node boundaries so far. *)
val messages : t -> int

(** Outstanding weight / count recorded at the owner (diagnostic). *)
val owner_total : t -> obj -> int

(** Sum of extant reference weights (diagnostic; equals {!owner_total}
    after [flush] — the invariant the property tests check). *)
val extant_weight : t -> obj -> int
