type workload = {
  name : string;
  description : string;
  source : string;
  input : Sexp.Datum.t list;
}

let all =
  [ { name = "plagen"; description = "PLA generator (traffic-light controller)";
      source = Plagen.source; input = Plagen.input };
    { name = "slang"; description = "gate-level circuit simulator (BCD decoder)";
      source = Slang.source; input = Slang.input };
    { name = "lyra"; description = "VLSI design-rule checker";
      source = Lyra.source; input = Lyra.input };
    { name = "editor"; description = "structure editor session";
      source = Editor.source; input = Editor.input };
    { name = "pearl"; description = "record database with in-place updates";
      source = Pearl.source; input = Pearl.input } ]

let find name = List.find_opt (fun w -> w.name = name) all

let trace_cache : (string, Trace.Capture.t) Hashtbl.t = Hashtbl.create 8

let trace w =
  match Hashtbl.find_opt trace_cache w.name with
  | Some c -> c
  | None ->
    let c = Lisp.Tracer.trace_program ~input:w.input w.source in
    Hashtbl.replace trace_cache w.name c;
    c

let prep_cache : (string, Trace.Preprocess.t) Hashtbl.t = Hashtbl.create 8

let preprocessed w =
  match Hashtbl.find_opt prep_cache w.name with
  | Some p -> p
  | None ->
    let p = Trace.Preprocess.run (trace w) in
    Hashtbl.replace prep_cache w.name p;
    p

let simulation_suite () = List.filter (fun w -> w.name <> "pearl") all
