(** PEARL analogue: an in-place association database.

    The thesis's PEARL (Package for Efficient Access to Representations
    in Lisp) maintained its data in directly accessed hunks, so its list
    trace was tiny and unusually rplaca/rplacd-heavy (Figure 3.1).  This
    workload builds a small record database and performs destructive
    field updates and insertions — a short trace dominated by
    modification primitives. *)

val source : string

(** Record definitions followed by update commands; nil ends. *)
val input : Sexp.Datum.t list

val trace : unit -> Trace.Capture.t
