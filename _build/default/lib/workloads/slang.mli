(** SLANG analogue: an event-free gate-level circuit simulator.

    The thesis's SLANG simulated a BCD-to-decimal converter.  This
    workload reads a gate netlist and input vectors, then settles the
    circuit by repeated evaluation passes, rebuilding the wire-value
    association list each pass — the cons-heavy profile SLANG shows in
    Figure 3.1. *)

val source : string

(** The BCD-to-decimal decoder netlist followed by the ten digit input
    vectors (each simulated twice). *)
val input : Sexp.Datum.t list

val trace : unit -> Trace.Capture.t
