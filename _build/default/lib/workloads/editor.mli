(** EDITOR analogue: a structure editor session.

    The thesis traced the Interlisp TTY editor performing global
    substitutions, searches and modifications on a function definition.
    This workload loads a large nested function body and applies a
    command script (substitute, count, find-depth, wrap, prune), each
    command walking and copying the structure — the deep, complex-list
    profile behind EDITOR's outlier n/p values in Table 3.1. *)

val source : string

(** The edited function body followed by the command script; nil ends. *)
val input : Sexp.Datum.t list

val trace : unit -> Trace.Capture.t
