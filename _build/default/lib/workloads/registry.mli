(** The benchmark suite: the five workloads of §3.3.1 by name, with
    cached traces (tracing an interpreted run is the expensive step; every
    analysis and simulation reuses the same capture). *)

type workload = {
  name : string;
  description : string;
  source : string;
  input : Sexp.Datum.t list;
}

(** plagen, slang, lyra, editor, pearl — in the thesis's listing order. *)
val all : workload list

val find : string -> workload option

(** [trace w] runs the workload under the instrumented interpreter
    (memoised per workload). *)
val trace : workload -> Trace.Capture.t

(** [preprocessed w] is the §5.2.1 preprocessing of [trace w]
    (memoised). *)
val preprocessed : workload -> Trace.Preprocess.t

(** The four simulation traces of Table 5.1 (everything but pearl, whose
    trace the thesis also dropped from Chapter 5). *)
val simulation_suite : unit -> workload list
