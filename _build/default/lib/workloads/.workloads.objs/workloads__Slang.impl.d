lib/workloads/slang.ml: Lisp List Sexp
