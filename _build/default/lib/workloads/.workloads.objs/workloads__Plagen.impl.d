lib/workloads/plagen.ml: Lisp List Sexp
