lib/workloads/lyra.ml: Array Lisp List Sexp Util
