lib/workloads/pearl.mli: Sexp Trace
