lib/workloads/lyra.mli: Sexp Trace
