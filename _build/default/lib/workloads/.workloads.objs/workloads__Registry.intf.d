lib/workloads/registry.mli: Sexp Trace
