lib/workloads/workloads.ml: Editor Lyra Pearl Plagen Registry Slang
