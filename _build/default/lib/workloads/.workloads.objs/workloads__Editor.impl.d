lib/workloads/editor.ml: Lisp Sexp
