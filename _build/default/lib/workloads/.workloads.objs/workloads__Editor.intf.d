lib/workloads/editor.mli: Sexp Trace
