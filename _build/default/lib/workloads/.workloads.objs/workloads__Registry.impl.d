lib/workloads/registry.ml: Editor Hashtbl Lisp List Lyra Pearl Plagen Sexp Slang Trace
