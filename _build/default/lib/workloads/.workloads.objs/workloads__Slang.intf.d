lib/workloads/slang.mli: Sexp Trace
