lib/workloads/plagen.mli: Sexp Trace
