lib/workloads/pearl.ml: Array Lisp List Sexp Util
