let source = {|
; LYRA: design-rule checks over a rectangle layout.
; A rectangle is (layer x1 y1 x2 y2); the input stream ends with nil.

(def read-rects (lambda ()
  (prog (rects r)
    loop
    (setq r (read))
    (cond ((null r) (return (reverse rects))))
    (setq rects (cons r rects))
    (go loop))))

(def rlayer (lambda (r) (car r)))
(def rx1 (lambda (r) (nth 1 r)))
(def ry1 (lambda (r) (nth 2 r)))
(def rx2 (lambda (r) (nth 3 r)))
(def ry2 (lambda (r) (nth 4 r)))

; a transient, margin-inflated bounding box built per comparison, as real
; checkers allocate scratch geometry: (box x1-1 y1-1 x2+1 y2+1)
(def bbox (lambda (r)
  (list5 (quote box) (sub1 (rx1 r)) (sub1 (ry1 r)) (add1 (rx2 r)) (add1 (ry2 r)))))
(def bx1 (lambda (b) (nth 1 b)))
(def by1 (lambda (b) (nth 2 b)))
(def bx2 (lambda (b) (nth 3 b)))
(def by2 (lambda (b) (nth 4 b)))

; rule 1: minimum feature width
(def width-ok (lambda (r minw)
  (and (greaterp (- (rx2 r) (rx1 r)) (sub1 minw))
       (greaterp (- (ry2 r) (ry1 r)) (sub1 minw)))))

; bounding boxes separated by at least s?
(def apart (lambda (a b s)
  (or (greaterp (bx1 b) (+ (bx2 a) (sub1 s)))
      (greaterp (bx1 a) (+ (bx2 b) (sub1 s)))
      (greaterp (by1 b) (+ (by2 a) (sub1 s)))
      (greaterp (by1 a) (+ (by2 b) (sub1 s))))))

(def overlapping (lambda (a b)
  (and (lessp (bx1 a) (bx2 b)) (lessp (bx1 b) (bx2 a))
       (lessp (by1 a) (by2 b)) (lessp (by1 b) (by2 a)))))

; rule 2: same-layer spacing; rule 3: poly/diff overlap needs metal cover
(def pair-violation (lambda (a b)
  (prog (ba bb)
    (setq ba (bbox a))
    (setq bb (bbox b))
    (cond ((eq (rlayer a) (rlayer b))
           (cond ((apart ba bb 2) (return nil))
                 ((overlapping ba bb) (return nil)) ; touching shapes merge
                 (t (return (list3 (quote spacing) a b)))))
          ((and (eq (rlayer a) (quote poly)) (eq (rlayer b) (quote diff)))
           (cond ((overlapping ba bb) (return (list3 (quote gate) a b)))
                 (t (return nil))))
          (t (return nil))))))

(def check-pair-list (lambda (r others errs)
  (prog (v)
    loop
    (cond ((null others) (return errs)))
    (setq v (pair-violation r (car others)))
    (cond ((null v))
          (t (setq errs (cons v errs))))
    (setq others (cdr others))
    (go loop))))

(def check-widths (lambda (rects errs)
  (prog ()
    loop
    (cond ((null rects) (return errs))
          ((width-ok (car rects) 2))
          (t (setq errs (cons (list2 (quote width) (car rects)) errs))))
    (setq rects (cdr rects))
    (go loop))))

(def check-pairs (lambda (rects errs)
  (prog ()
    loop
    (cond ((null rects) (return errs)))
    (setq errs (check-pair-list (car rects) (cdr rects) errs))
    (setq rects (cdr rects))
    (go loop))))

; histogram of violations by rule name
(def tally (lambda (errs counts)
  (prog (key e)
    loop
    (cond ((null errs) (return counts)))
    (setq key (car (car errs)))
    (setq e (assq key counts))
    (cond ((null e) (setq counts (cons (list2 key 1) counts)))
          (t (rplacd e (cons (add1 (car (cdr e))) nil))))
    (setq errs (cdr errs))
    (go loop))))

(def main (lambda ()
  (prog (rects errs)
    (setq rects (read-rects))
    (setq errs (check-widths rects nil))
    (setq errs (check-pairs rects errs))
    (write (length errs))
    (write (tally errs nil))
    (return (length errs)))))

(main)
|}

(* A pseudo-random but deterministic layout: three layers, a grid of
   cells with wires and contacts, some deliberately too close or too
   thin. *)
let input =
  let module D = Sexp.Datum in
  let rng = Util.Rng.create ~seed:20260706 in
  let layers = [| "metal"; "poly"; "diff" |] in
  let rects =
    List.init 120 (fun i ->
        let layer = layers.(Util.Rng.int rng 3) in
        let x1 = Util.Rng.int rng 40 and y1 = Util.Rng.int rng 40 in
        let w = 1 + Util.Rng.int rng 6 and h = 1 + Util.Rng.int rng 6 in
        ignore i;
        D.list
          [ D.sym layer; D.int x1; D.int y1; D.int (x1 + w); D.int (y1 + h) ])
  in
  rects @ [ D.Nil ]

let trace () = Lisp.Tracer.trace_program ~input source
