let source = {|
; PLAGEN: generate a PLA from a truth table.
; Rows arrive on the input stream as ((i5 .. i0) (o3 .. o0)); nil ends.

(def read-rows (lambda ()
  (prog (rows row)
    loop
    (setq row (read))
    (cond ((null row) (return (reverse rows))))
    (setq rows (cons row rows))
    (go loop))))

(def row-inputs (lambda (row) (car row)))
(def row-outputs (lambda (row) (car (cdr row))))

; a row contributes a product term if any output is asserted
(def active-row (lambda (row) (member 1 (row-outputs row))))

(def gather-terms (lambda (rows)
  (prog (acc)
    loop
    (cond ((null rows) (return (reverse acc)))
          ((active-row (car rows))
           (setq acc (cons (row-inputs (car rows)) acc))))
    (setq rows (cdr rows))
    (go loop))))

(def dedup (lambda (terms seen)
  (prog ()
    loop
    (cond ((null terms) (return (reverse seen)))
          ((member (car terms) seen))
          (t (setq seen (cons (car terms) seen))))
    (setq terms (cdr terms))
    (go loop))))

; AND-plane row: one drive symbol per input column
(def drive (lambda (bit) (cond ((= bit 1) (quote on)) (t (quote off)))))
(def and-row (lambda (term) (mapcar (lambda (b) (drive b)) term)))
(def and-plane (lambda (terms) (mapcar (lambda (tm) (and-row tm)) terms)))

; OR-plane: per output column, the product terms that drive it
(def or-column (lambda (rows k)
  (prog (acc)
    loop
    (cond ((null rows) (return (reverse acc)))
          ((= (nth k (row-outputs (car rows))) 1)
           (setq acc (cons (row-inputs (car rows)) acc))))
    (setq rows (cdr rows))
    (go loop))))

(def build-or-plane (lambda (rows k width)
  (prog (acc)
    loop
    (cond ((= k width) (return (reverse acc))))
    (setq acc (cons (or-column rows k) acc))
    (setq k (add1 k))
    (go loop))))

; term folding score: literals shared between term pairs (placement metric)
(def shared (lambda (a b)
  (cond ((null a) 0)
        ((equal (car a) (car b)) (add1 (shared (cdr a) (cdr b))))
        (t (shared (cdr a) (cdr b))))))

(def fold-score (lambda (term others)
  (prog (score)
    (setq score 0)
    loop
    (cond ((null others) (return score)))
    (setq score (+ score (shared term (car others))))
    (setq others (cdr others))
    (go loop))))

(def fold-pass (lambda (terms)
  (prog (score)
    (setq score 0)
    loop
    (cond ((null terms) (return score)))
    (setq score (+ score (fold-score (car terms) (cdr terms))))
    (setq terms (cdr terms))
    (go loop))))

(def main (lambda ()
  (prog (rows terms aplane oplane score)
    (setq rows (read-rows))
    (setq terms (dedup (gather-terms rows) nil))
    (setq aplane (and-plane terms))
    (setq oplane (build-or-plane rows 0 4))
    (setq score (fold-pass terms))
    (write (length terms))
    (write score)
    (write (length aplane))
    (write (length oplane))
    (return (length terms)))))

(main)
|}

(* A 6-input, 4-output controller truth table: next-state and light
   outputs of a traffic-light-style state machine over (cars, long, short,
   extra, s1, s0). *)
let input =
  let module D = Sexp.Datum in
  let rows =
    List.init 64 (fun i ->
        let bit k = (i lsr k) land 1 in
        let cars = bit 5 and long = bit 4 and short = bit 3 in
        let extra = bit 2 and s1 = bit 1 and s0 = bit 0 in
        let n1 = if s1 = 0 && s0 = 1 && long = 1 then 1 else if s1 = 1 && short = 1 then 0 else s1 in
        let n0 = if s1 = 0 && s0 = 0 && cars = 1 then 1 else if s0 = 1 && long = 1 then 0 else s0 in
        let green = if s1 = 0 && s0 = 0 then 1 else 0 in
        let red = if (s1 = 1 && extra = 0) || (s0 = 1 && cars = 0) then 1 else 0 in
        D.list
          [ D.of_ints [ cars; long; short; extra; s1; s0 ];
            D.of_ints [ n1; n0; green; red ] ])
  in
  rows @ [ D.Nil ]

let trace () = Lisp.Tracer.trace_program ~input source
