(** PLAGEN analogue: a PLA (programmable logic array) generator.

    The thesis's PLAGEN generated a PLA for a traffic-light controller
    from a truth table.  This workload takes a truth table (list of
    (inputs -> outputs) rows), extracts product terms, folds shared
    terms, and lays out AND-plane and OR-plane row lists — heavy list
    construction and traversal with a car/cdr-dominated profile. *)

val source : string

(** Input rows for a small traffic-light-controller-style truth table. *)
val input : Sexp.Datum.t list

val trace : unit -> Trace.Capture.t
