let source = {|
; PEARL: a record database updated in place.
; Input: records (id (field . value) ...) until the symbol end, then
; commands (upd id field val) | (bump id field) | (get id field) |
; (add record) until nil.

(def find-rec (lambda (id db)
  (cond ((null db) nil)
        ((eq (car (car db)) id) (car db))
        (t (find-rec id (cdr db))))))

(def field-pair (lambda (f rec) (assq f (cdr rec))))

(def upd (lambda (id f v db)
  (prog (rec pair)
    (setq rec (find-rec id db))
    (cond ((null rec) (return nil)))
    (setq pair (field-pair f rec))
    (cond ((null pair)
           (rplacd rec (cons (cons f v) (cdr rec)))
           (return t)))
    (rplacd pair v)
    (return t))))

(def bump-field (lambda (f rec)
  (prog (pair)
    (setq pair (field-pair f rec))
    (cond ((null pair)
           (rplacd rec (cons (cons f 1) (cdr rec)))
           (return t)))
    (cond ((numberp (cdr pair)) (rplacd pair (add1 (cdr pair))))
          (t (rplacd pair 1)))
    (return t))))

; a bump touches the salary, grade and hit-count fields in place
(def bump (lambda (id f db)
  (prog (rec)
    (setq rec (find-rec id db))
    (cond ((null rec) (return nil)))
    (bump-field f rec)
    (bump-field (quote grade) rec)
    (bump-field (quote hits) rec)
    (return t))))

(def get (lambda (id f db)
  (prog (rec pair)
    (setq rec (find-rec id db))
    (cond ((null rec) (return nil)))
    (setq pair (field-pair f rec))
    (cond ((null pair) (return nil)))
    (return (cdr pair)))))

(def rename (lambda (id newid db)
  (prog (rec)
    (setq rec (find-rec id db))
    (cond ((null rec) (return nil)))
    (rplaca rec newid)
    (return t))))

(def read-db (lambda ()
  (prog (db rec)
    loop
    (setq rec (read))
    (cond ((eq rec (quote end)) (return db)))
    (setq db (cons rec db))
    (go loop))))

(def main (lambda ()
  (prog (db cmd op)
    (setq db (read-db))
    loop
    (setq cmd (read))
    (cond ((null cmd) (write (length db)) (return (length db))))
    (setq op (car cmd))
    (cond ((eq op (quote upd)) (upd (nth 1 cmd) (nth 2 cmd) (nth 3 cmd) db))
          ((eq op (quote bump)) (bump (nth 1 cmd) (nth 2 cmd) db))
          ((eq op (quote get)) (write (get (nth 1 cmd) (nth 2 cmd) db)))
          ((eq op (quote rename)) (rename (nth 1 cmd) (nth 2 cmd) db))
          ((eq op (quote add)) (setq db (cons (nth 1 cmd) db))))
    (go loop))))

(main)
|}

let input =
  let module D = Sexp.Datum in
  let s = D.sym in
  let record id name dept sal =
    D.cons (s id)
      (D.list
         [ D.cons (s "name") (s name); D.cons (s "dept") (s dept);
           D.cons (s "sal") (D.int sal) ])
  in
  let records =
    [ record "r1" "ada" "eng" 120; record "r2" "bob" "ops" 90;
      record "r3" "cyd" "eng" 105; record "r4" "dan" "mkt" 80 ]
  in
  let rng = Util.Rng.create ~seed:1983 in
  let ids = [| "r1"; "r2"; "r3"; "r4" |] in
  let fields = [| "sal"; "dept"; "name" |] in
  let commands =
    List.init 120 (fun i ->
        let id = s ids.(Util.Rng.int rng (Array.length ids)) in
        match i mod 9 with
        | 0 | 1 | 2 | 3 | 4 -> D.list [ s "bump"; id; s "sal" ]
        | 5 ->
          D.list [ s "upd"; id; s fields.(Util.Rng.int rng 3);
                   D.int (Util.Rng.int rng 200) ]
        | 6 ->
          (* rename and immediately rename back so later commands still hit *)
          D.list [ s "rename"; id; id ]
        | 7 -> D.list [ s "get"; id; s fields.(Util.Rng.int rng 3) ]
        | _ -> D.list [ s "upd"; id; s "grade"; D.int (Util.Rng.int rng 10) ])
  in
  records @ [ s "end" ] @ commands @ [ D.Nil ]

let trace () = Lisp.Tracer.trace_program ~input source
