(** LYRA analogue: a geometric design-rule checker.

    The thesis's LYRA ran CMOS design-rule checks over part of a
    multiplier layout.  This workload checks a rectangle layout (layer,
    x1, y1, x2, y2) for minimum width, same-layer minimum spacing and
    inter-layer overlap violations, visiting every rectangle pair — the
    largest, most access-dominated trace of the suite, matching LYRA's
    role in Table 5.1. *)

val source : string

(** A generated layout of a few dozen rectangles over three layers. *)
val input : Sexp.Datum.t list

val trace : unit -> Trace.Capture.t
