(** The benchmark workload suite (§3.3.1): re-implementations of the
    thesis's five programs — PLAGEN, SLANG, LYRA, EDITOR and PEARL — in
    the mini-Lisp, with deterministic inputs, plus a registry with trace
    caching. *)

module Plagen = Plagen
module Slang = Slang
module Lyra = Lyra
module Editor = Editor
module Pearl = Pearl
module Registry = Registry
