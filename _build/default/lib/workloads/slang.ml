let source = {|
; SLANG: settle a combinational netlist over input vectors.
; Wire values live in a positional list, updated functionally: each gate
; evaluation rebuilds the prefix of the value list (the cons-heavy
; profile of Fig 3.1).  Input stream: wire count, netlist, then vectors;
; nil ends.  A gate is (type (in-index...) out-index).

(def getw (lambda (k vals) (nth k vals)))

; functional update: copy the prefix, splice the new value
(def setw (lambda (k v vals)
  (prog (acc)
    loop
    (cond ((zerop k) (return (revappend acc (cons v (cdr vals))))))
    (setq acc (cons (car vals) acc))
    (setq vals (cdr vals))
    (setq k (sub1 k))
    (go loop))))

(def zeros (lambda (k)
  (prog (acc)
    loop
    (cond ((zerop k) (return acc)))
    (setq acc (cons 0 acc))
    (setq k (sub1 k))
    (go loop))))

(def gate-type (lambda (g) (car g)))
(def gate-ins (lambda (g) (car (cdr g))))
(def gate-out (lambda (g) (car (cdr (cdr g)))))

(def eval-gate (lambda (g vals)
  (prog (a b ty ins)
    (setq ty (gate-type g))
    (setq ins (gate-ins g))
    (setq a (getw (car ins) vals))
    (cond ((null (cdr ins)) (setq b 0))
          (t (setq b (getw (car (cdr ins)) vals))))
    (cond ((eq ty (quote and2)) (return (cond ((and (= a 1) (= b 1)) 1) (t 0))))
          ((eq ty (quote or2)) (return (cond ((or (= a 1) (= b 1)) 1) (t 0))))
          ((eq ty (quote inv)) (return (cond ((= a 1) 0) (t 1))))
          (t (return 0))))))

; one settling pass: evaluate every gate against the evolving value list
(def pass (lambda (gates vals)
  (prog ()
    loop
    (cond ((null gates) (return vals)))
    (setq vals (setw (gate-out (car gates)) (eval-gate (car gates) vals) vals))
    (setq gates (cdr gates))
    (go loop))))

(def load-inputs (lambda (vec vals k)
  (prog ()
    loop
    (cond ((null vec) (return vals)))
    (setq vals (setw k (car vec) vals))
    (setq vec (cdr vec))
    (setq k (add1 k))
    (go loop))))

(def read-outs (lambda (outs vals)
  (prog (acc)
    loop
    (cond ((null outs) (return (reverse acc))))
    (setq acc (cons (getw (car outs) vals) acc))
    (setq outs (cdr outs))
    (go loop))))

(def sim-vector (lambda (nwires gates outs vec)
  (prog (vals)
    (setq vals (load-inputs vec (zeros nwires) 0))
    (setq vals (pass gates vals))
    (return (read-outs outs vals)))))

(def main (lambda ()
  (prog (nwires gates outs vec results)
    (setq nwires (read))
    (setq gates (read))
    (setq outs (read))
    loop
    (setq vec (read))
    (cond ((null vec)
           (write (length results))
           (return (length results))))
    (setq results (cons (sim-vector nwires gates outs vec) results))
    (go loop))))

(main)
|}

(* BCD-to-decimal decoder over numbered wires: 0-3 inputs, 4-7 inverted
   inputs, then x/y partial products and the ten digit outputs. *)
let input =
  let module D = Sexp.Datum in
  let gate ty ins out =
    D.list [ D.sym ty; D.of_ints ins; D.int out ]
  in
  (* wires: b3 b2 b1 b0 = 0..3; n3 n2 n1 n0 = 4..7;
     x_d = 8+2d, y_d = 9+2d, d_d = 28+d; total 38 wires *)
  let invs = List.init 4 (fun b -> gate "inv" [ b ] (4 + b)) in
  let decoders =
    List.concat
      (List.init 10 (fun digit ->
           let lit k = if (digit lsr k) land 1 = 1 then 3 - k else 4 + (3 - k) in
           [ gate "and2" [ lit 3; lit 2 ] (8 + (2 * digit));
             gate "and2" [ lit 1; lit 0 ] (9 + (2 * digit));
             gate "and2" [ 8 + (2 * digit); 9 + (2 * digit) ] (28 + digit) ]))
  in
  let netlist = D.list (invs @ decoders) in
  let outs = D.of_ints (List.init 10 (fun d -> 28 + d)) in
  let vectors =
    List.init 10 (fun digit ->
        D.of_ints (List.init 4 (fun k -> (digit lsr (3 - k)) land 1)))
  in
  (D.int 38 :: netlist :: outs :: vectors) @ [ D.Nil ]

let trace () = Lisp.Tracer.trace_program ~input source
