let source = {|
; EDITOR: apply an editing script to a function body.
; Input: the body, then commands like (subst new old), (count x),
; (depth), (find x), (wrap x w), (prune x); nil ends the script.

(def count-sym (lambda (x e)
  (cond ((atom e) (cond ((eq e x) 1) (t 0)))
        (t (+ (count-sym x (car e)) (count-sym x (cdr e)))))))

(def max2 (lambda (a b) (cond ((greaterp a b) a) (t b))))

(def edepth (lambda (e)
  (cond ((atom e) 0)
        (t (max2 (add1 (edepth (car e))) (edepth (cdr e)))))))

(def find-sym (lambda (x e)
  (cond ((atom e) (eq e x))
        ((find-sym x (car e)) t)
        (t (find-sym x (cdr e))))))

; replace occurrences of atom x with (w x)
(def wrap-sym (lambda (x w e)
  (cond ((atom e) (cond ((eq e x) (list2 w x)) (t e)))
        (t (cons (wrap-sym x w (car e)) (wrap-sym x w (cdr e)))))))

; drop list elements equal to atom x, at any level
(def prune (lambda (x e)
  (cond ((atom e) e)
        ((eq (car e) x) (prune x (cdr e)))
        (t (cons (prune x (car e)) (prune x (cdr e)))))))

(def apply-cmd (lambda (cmd body)
  (prog (op)
    (setq op (car cmd))
    (cond ((eq op (quote subst))
           (return (subst (nth 1 cmd) (nth 2 cmd) body)))
          ((eq op (quote count))
           (write (count-sym (nth 1 cmd) body))
           (return body))
          ((eq op (quote depth))
           (write (edepth body))
           (return body))
          ((eq op (quote find))
           (write (find-sym (nth 1 cmd) body))
           (return body))
          ((eq op (quote wrap))
           (return (wrap-sym (nth 1 cmd) (nth 2 cmd) body)))
          ((eq op (quote prune))
           (return (prune (nth 1 cmd) body)))
          (t (return body))))))

(def main (lambda ()
  (prog (body cmd)
    (setq body (read))
    loop
    (setq cmd (read))
    (cond ((null cmd)
           (write (edepth body))
           (return (count-sym (quote cond) body))))
    (setq body (apply-cmd cmd body))
    (go loop))))

(main)
|}

(* A deeply nested pseudo-function body (EDITOR's lists were the suite's
   outliers: n ~ 75, p ~ 21 in Table 3.1) and a 40-command script. *)
let input =
  let module D = Sexp.Datum in
  let s = D.sym in
  let body =
    Sexp.parse
      {|(prog (x y z acc)
          (setq acc nil)
          (setq x (car input))
          (cond ((null x) (return nil))
                ((atom x) (setq y (cons x acc)))
                (t (prog (u v)
                     (setq u (car x))
                     (setq v (cdr x))
                     (cond ((equal u marker)
                            (setq acc (cons (cons u (cons v nil)) acc)))
                           ((greaterp (weight u) limit)
                            (setq acc (append (flatten u) acc))
                            (setq z (cons (cons u (cons v nil)) z)))
                           (t (setq acc (cons v acc)))))))
          loop
          (cond ((null y) (go done))
                ((atom (car y)) (setq acc (cons (car y) acc)))
                (t (setq acc (append (reverse (car y)) acc))))
          (setq y (cdr y))
          (go loop)
          done
          (cond ((greaterp (length acc) bound)
                 (return (cons (quote overflow) (cons acc nil))))
                (t (return acc))))|}
  in
  let cmds =
    [ D.list [ s "count"; s "setq" ];
      D.list [ s "depth" ];
      D.list [ s "subst"; s "accum"; s "acc" ];
      D.list [ s "count"; s "accum" ];
      D.list [ s "find"; s "marker" ];
      D.list [ s "wrap"; s "limit"; s "check" ];
      D.list [ s "subst"; s "item"; s "x" ];
      D.list [ s "depth" ];
      D.list [ s "prune"; s "done" ];
      D.list [ s "count"; s "cond" ];
      D.list [ s "subst"; s "result"; s "accum" ];
      D.list [ s "wrap"; s "bound"; s "check" ];
      D.list [ s "find"; s "overflow" ];
      D.list [ s "count"; s "cons" ];
      D.list [ s "subst"; s "val"; s "v" ];
      D.list [ s "depth" ];
      D.list [ s "prune"; s "loop" ];
      D.list [ s "count"; s "result" ];
      D.list [ s "wrap"; s "item"; s "touch" ];
      D.list [ s "subst"; s "weightof"; s "weight" ];
      D.list [ s "find"; s "flatten" ];
      D.list [ s "count"; s "t" ];
      D.list [ s "subst"; s "collect"; s "append" ];
      D.list [ s "depth" ];
      D.list [ s "count"; s "touch" ];
      D.list [ s "wrap"; s "val"; s "quote" ];
      D.list [ s "subst"; s "u2"; s "u" ];
      D.list [ s "find"; s "u2" ];
      D.list [ s "count"; s "check" ];
      D.list [ s "depth" ] ]
  in
  (body :: cmds) @ [ D.Nil ]

let trace () = Lisp.Tracer.trace_program ~input source
