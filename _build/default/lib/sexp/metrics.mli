(** Structural metrics of lists: the [n] and [p] measures of §3.3.1.

    For a list [d]:
    - [n d] is the number of symbols (non-[Nil] atoms) contained anywhere in
      the list;
    - [p d] is the number of internal parenthesis pairs, i.e. the number of
      sub-list occurrences below the outermost level.

    Figure 3.2 of the thesis: [(A B C (D E) F G)] has n = 7, p = 1 and takes
    8 two-pointer list cells; [(A (B (C (D E) F) G))] has n = 7, p = 3 and
    takes 10 cells.  In general a list needs [n + p] two-pointer (or
    cdr-coded) cells and [n] cells under a structure-coded representation. *)

val n : Datum.t -> int
val p : Datum.t -> int

(** [np d] computes both in one pass. *)
val np : Datum.t -> int * int

(** Space cost in two-pointer list cells: [n + p].  Matches
    {!Datum.cell_count} on proper nested lists. *)
val two_pointer_cells : Datum.t -> int

(** Space cost in structure-coded (CDAR/EPS-style) cells: [n]. *)
val structure_coded_cells : Datum.t -> int

(** [is_linear d]: no element of [d] is itself a list (p = 0). *)
val is_linear : Datum.t -> bool

(** Structuredness ratio p / (n + p); 0 for linear lists, approaching 1 for
    deeply nested ones.  Returns 0 for the empty list. *)
val structuredness : Datum.t -> float
