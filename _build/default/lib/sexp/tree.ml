type t =
  | Leaf of Datum.t
  | Node of t * t

let rec of_datum (d : Datum.t) =
  match d with
  | Nil | Sym _ | Int _ | Str _ -> Leaf d
  | Cons (a, x) -> Node (of_datum a, of_datum x)

let rec to_datum = function
  | Leaf d -> d
  | Node (a, x) -> Datum.Cons (to_datum a, to_datum x)

let rec leaf_count = function
  | Leaf _ -> 1
  | Node (a, b) -> leaf_count a + leaf_count b

let rec internal_count = function
  | Leaf _ -> 0
  | Node (a, b) -> 1 + internal_count a + internal_count b

let node_count t = leaf_count t + internal_count t

let node_numbers t =
  let rec go num node acc =
    match node with
    | Leaf _ -> (num, node) :: acc
    | Node (a, b) -> (num, node) :: go (2 * num) a (go ((2 * num) + 1) b acc)
  in
  List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) (go 1 t [])

type order = Pre | In | Post

let visit_sequence order t =
  let rec go num node acc =
    match node with
    | Leaf _ -> num :: acc
    | Node (a, b) ->
      let left acc = go (2 * num) a acc in
      let right acc = go ((2 * num) + 1) b acc in
      (match order with
       | Pre -> num :: left (right acc)
       | In -> left (num :: right acc)
       | Post -> left (right (num :: acc)))
  in
  go 1 t []

let touch_sequence t =
  (* Each internal node is touched on the way down, between its subtrees,
     and on the way back up (§5.3.1). *)
  let rec go num node acc =
    match node with
    | Leaf _ -> num :: acc
    | Node (a, b) ->
      num :: go (2 * num) a (num :: go ((2 * num) + 1) b (num :: acc))
  in
  go 1 t []

let traversal_hits_misses t =
  let internal = internal_count t in
  let leaves = leaf_count t in
  let touches = (3 * internal) + leaves in
  let misses = internal in
  (misses, touches - misses)
