lib/sexp/reader.mli: Datum
