lib/sexp/datum.mli:
