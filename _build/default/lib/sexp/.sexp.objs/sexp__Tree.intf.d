lib/sexp/tree.mli: Datum
