lib/sexp/printer.ml: Buffer Datum Format String
