lib/sexp/metrics.ml: Datum
