lib/sexp/printer.mli: Datum Format
