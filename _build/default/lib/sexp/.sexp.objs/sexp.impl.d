lib/sexp/sexp.ml: Datum Metrics Printer Reader Tree
