lib/sexp/tree.ml: Datum List Stdlib
