lib/sexp/metrics.mli: Datum
