lib/sexp/reader.ml: Buffer Datum Format List String
