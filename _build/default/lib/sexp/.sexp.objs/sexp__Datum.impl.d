lib/sexp/datum.ml: Hashtbl List Stdlib String
