type t =
  | Nil
  | Sym of string
  | Int of int
  | Str of string
  | Cons of t * t

let nil = Nil
let sym s = Sym s
let int n = Int n
let str s = Str s
let cons a d = Cons (a, d)

let list xs = List.fold_right cons xs Nil
let of_ints xs = list (List.map int xs)

let rec to_list = function
  | Nil -> []
  | Cons (a, d) -> a :: to_list d
  | Sym _ | Int _ | Str _ -> invalid_arg "Datum.to_list: improper list"

let car = function
  | Cons (a, _) -> a
  | Nil -> Nil
  | Sym _ | Int _ | Str _ -> invalid_arg "Datum.car: atom"

let cdr = function
  | Cons (_, d) -> d
  | Nil -> Nil
  | Sym _ | Int _ | Str _ -> invalid_arg "Datum.cdr: atom"

let is_atom = function
  | Nil | Sym _ | Int _ | Str _ -> true
  | Cons _ -> false

let rec is_list = function
  | Nil -> true
  | Cons (_, d) -> is_list d
  | Sym _ | Int _ | Str _ -> false

let is_nil d = d = Nil

let rec equal a b =
  match a, b with
  | Nil, Nil -> true
  | Sym x, Sym y -> String.equal x y
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Cons (a1, d1), Cons (a2, d2) -> equal a1 a2 && equal d1 d2
  | (Nil | Sym _ | Int _ | Str _ | Cons _), _ -> false

let rec compare a b =
  let rank = function
    | Nil -> 0 | Sym _ -> 1 | Int _ -> 2 | Str _ -> 3 | Cons _ -> 4
  in
  match a, b with
  | Nil, Nil -> 0
  | Sym x, Sym y -> String.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> String.compare x y
  | Cons (a1, d1), Cons (a2, d2) ->
    let c = compare a1 a2 in
    if c <> 0 then c else compare d1 d2
  | _ -> Stdlib.compare (rank a) (rank b)

let hash d =
  (* Bounded-depth structural hash; collisions only degrade hash tables. *)
  let rec go depth acc d =
    if depth > 12 then acc
    else
      match d with
      | Nil -> (acc * 31) + 1
      | Sym s -> (acc * 31) + Hashtbl.hash s
      | Int n -> (acc * 31) + (n lxor 0x5bd1)
      | Str s -> (acc * 31) + Hashtbl.hash s + 7
      | Cons (a, x) -> go (depth + 1) (go (depth + 1) ((acc * 31) + 5) a) x
  in
  go 0 0 d land max_int

let rec length = function
  | Nil -> 0
  | Cons (_, d) -> 1 + length d
  | Sym _ | Int _ | Str _ -> invalid_arg "Datum.length: improper list"

let rec depth = function
  | Nil | Sym _ | Int _ | Str _ -> 0
  | Cons (a, d) ->
    let da = 1 + depth a in
    let dd = depth_tail d in
    max da dd

and depth_tail = function
  | Nil -> 1
  | Cons (a, d) -> max (1 + depth a) (depth_tail d)
  | Sym _ | Int _ | Str _ -> 1

let rec nth n d =
  match n, d with
  | 0, Cons (a, _) -> a
  | n, Cons (_, d) when n > 0 -> nth (n - 1) d
  | _, (Nil | Sym _ | Int _ | Str _ | Cons _) ->
    invalid_arg "Datum.nth: index out of range"

let rec append a b =
  match a with
  | Nil -> b
  | Cons (x, d) -> Cons (x, append d b)
  | Sym _ | Int _ | Str _ -> invalid_arg "Datum.append: improper list"

let rev d =
  let rec go acc = function
    | Nil -> acc
    | Cons (a, d) -> go (Cons (a, acc)) d
    | Sym _ | Int _ | Str _ -> invalid_arg "Datum.rev: improper list"
  in
  go Nil d

let rec map f = function
  | Nil -> Nil
  | Cons (a, d) -> Cons (f a, map f d)
  | Sym _ | Int _ | Str _ -> invalid_arg "Datum.map: improper list"

let rec iter_atoms f = function
  | Nil -> ()
  | Sym _ | Int _ | Str _ as a -> f a
  | Cons (a, d) -> iter_atoms f a; iter_atoms f d

let rec fold_cells f acc d =
  match d with
  | Nil | Sym _ | Int _ | Str _ -> acc
  | Cons (a, x) -> fold_cells f (fold_cells f (f acc d) a) x

let cell_count d = fold_cells (fun n _ -> n + 1) 0 d

let rec subst ~old_ ~new_ d =
  if equal d old_ then new_
  else
    match d with
    | Nil | Sym _ | Int _ | Str _ -> d
    | Cons (a, x) -> Cons (subst ~old_ ~new_ a, subst ~old_ ~new_ x)
