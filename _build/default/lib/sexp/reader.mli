(** Reader: parse the textual s-expression notation into {!Datum.t}.

    Accepted syntax:
    - lists: [( e1 e2 ... )], the empty list [()] reads as [Nil];
    - dotted pairs: [(a . b)];
    - integers: an optional sign followed by digits;
    - strings: double-quoted with [\\] escapes;
    - symbols: any other token; [nil] and [t] read as [Nil] and [Sym "t"];
    - comments: from [;] to end of line. *)

exception Parse_error of string
(** Raised on malformed input, with a human-readable description. *)

(** [parse s] reads exactly one datum from [s].
    @raise Parse_error on malformed or trailing input. *)
val parse : string -> Datum.t

(** [parse_many s] reads all datums from [s] (possibly none).
    @raise Parse_error on malformed input. *)
val parse_many : string -> Datum.t list
