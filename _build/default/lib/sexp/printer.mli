(** Printer: render {!Datum.t} back to the textual notation accepted by
    {!Reader}.  [parse (to_string d)] is structurally equal to [d]. *)

val to_string : Datum.t -> string

(** Pretty-printer compatible with {!Fmt} combinators. *)
val pp : Format.formatter -> Datum.t -> unit
