exception Parse_error of string

type token =
  | Lparen
  | Rparen
  | Dot
  | Quote
  | Atom of string
  | String of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* Tokenizer: one pass over the string, accumulating tokens in order. *)
let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let is_delim c =
    match c with
    | '(' | ')' | '\'' | ';' | '"' -> true
    | c -> c = ' ' || c = '\t' || c = '\n' || c = '\r'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = ';' then begin
      while !i < n && s.[!i] <> '\n' do incr i done
    end
    else if c = '(' then (emit Lparen; incr i)
    else if c = ')' then (emit Rparen; incr i)
    else if c = '\'' then (emit Quote; incr i)
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !i >= n then fail "unterminated string literal"
        else begin
          let c = s.[!i] in
          if c = '"' then (closed := true; incr i)
          else if c = '\\' then begin
            if !i + 1 >= n then fail "dangling escape in string literal";
            (match s.[!i + 1] with
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | c -> Buffer.add_char buf c);
            i := !i + 2
          end
          else (Buffer.add_char buf c; incr i)
        end
      done;
      emit (String (Buffer.contents buf))
    end
    else begin
      let start = !i in
      while !i < n && not (is_delim s.[!i]) do incr i done;
      let tok = String.sub s start (!i - start) in
      if tok = "." then emit Dot else emit (Atom tok)
    end
  done;
  List.rev !toks

let atom_of_string a =
  let is_int =
    let body = if a.[0] = '-' || a.[0] = '+' then String.sub a 1 (String.length a - 1) else a in
    body <> "" && String.for_all (fun c -> c >= '0' && c <= '9') body
  in
  if a = "nil" || a = "NIL" then Datum.Nil
  else if is_int then Datum.Int (int_of_string a)
  else Datum.Sym (String.lowercase_ascii a)

(* Recursive-descent parse of one datum; returns it with the rest of the
   token stream. *)
let rec parse_one = function
  | [] -> fail "unexpected end of input"
  | String s :: rest -> (Datum.Str s, rest)
  | Atom a :: rest -> (atom_of_string a, rest)
  | Quote :: rest ->
    let d, rest = parse_one rest in
    (Datum.list [ Datum.Sym "quote"; d ], rest)
  | Lparen :: rest -> parse_list rest
  | Rparen :: _ -> fail "unexpected ')'"
  | Dot :: _ -> fail "unexpected '.'"

and parse_list = function
  | [] -> fail "unterminated list"
  | Rparen :: rest -> (Datum.Nil, rest)
  | Dot :: rest ->
    let tail, rest = parse_one rest in
    (match rest with
     | Rparen :: rest -> (tail, rest)
     | _ -> fail "expected ')' after dotted tail")
  | toks ->
    let head, rest = parse_one toks in
    let tail, rest = parse_list rest in
    (Datum.Cons (head, tail), rest)

let parse s =
  match parse_one (tokenize s) with
  | d, [] -> d
  | _, _ -> fail "trailing input after datum"

let parse_many s =
  let rec go acc = function
    | [] -> List.rev acc
    | toks ->
      let d, rest = parse_one toks in
      go (d :: acc) rest
  in
  go [] (tokenize s)
