(** S-expression substrate: datatype, reader, printer, structural metrics
    and the binary-tree view used by the structure-coded representations
    and the traversal analysis of §5.3.1. *)

module Datum = Datum
module Reader = Reader
module Printer = Printer
module Metrics = Metrics
module Tree = Tree

type t = Datum.t

let parse = Reader.parse
let parse_many = Reader.parse_many
let to_string = Printer.to_string
let pp = Printer.pp
