(** Binary-tree view of an s-expression (Figure 5.6 of the thesis).

    Every cons cell maps to an internal node whose left subtree is the car
    and right subtree the cdr; atoms (including terminating [Nil]s) map to
    leaves.  A list with [n] atoms and [p] internal left parentheses yields
    [n + p + 1] leaves ([n] atomic, [p + 1] nil) and [n + p] internal nodes,
    [2n + 2p + 1] nodes in total (§5.3.1).

    The module also provides the Minsky / BLAST structure-code node
    numbering [(l, k) -> N = 2^l + k] (§2.3.3.2): the root is 1 and the
    children of node [N] are [2N] and [2N + 1]. *)

type t =
  | Leaf of Datum.t             (** an atom or a terminating [Nil] *)
  | Node of t * t               (** a cons cell: car subtree, cdr subtree *)

val of_datum : Datum.t -> t

(** Inverse of {!of_datum}: [to_datum (of_datum d) = d]. *)
val to_datum : t -> Datum.t

val leaf_count : t -> int
val internal_count : t -> int
val node_count : t -> int

(** [node_numbers t] lists [(number, node)] pairs under the BLAST numbering,
    in increasing node-number order within each level. *)
val node_numbers : t -> (int * t) list

type order = Pre | In | Post

(** [visit_sequence order t] is the sequence of node numbers in the given
    ordered traversal (the "Preorder/Inorder/Postorder" lines of §5.3.1). *)
val visit_sequence : order -> t -> int list

(** [touch_sequence t] is the traversal super-sequence of §5.3.1: the order
    in which nodes are *touched* during any of the three ordered traversals.
    Each internal node appears exactly three times, each leaf once. *)
val touch_sequence : t -> int list

(** Guaranteed LPT statistics for a full ordered traversal of the list
    (§5.3.1): [(misses, hits)] = [(n + p, 3n + 3p + 1)], i.e. a 75% hit rate
    in the limit.  Derived from the tree shape, not simulated. *)
val traversal_hits_misses : t -> int * int
