(* One recursive pass computing (symbols, internal parenthesis pairs).
   [top] distinguishes the outermost list (its parentheses are not
   "internal") from nested occurrences. *)
let rec count ~top (d : Datum.t) =
  match d with
  | Nil -> (0, 0)
  | Sym _ | Int _ | Str _ -> (1, 0)
  | Cons _ ->
    let self = if top then 0 else 1 in
    let rec elements (n, p) = function
      | Datum.Nil -> (n, p)
      | Cons (a, rest) ->
        let na, pa = count ~top:false a in
        elements (n + na, p + pa) rest
      | Sym _ | Int _ | Str _ as a ->
        (* dotted tail: count the atom itself *)
        let na, pa = count ~top:false a in
        (n + na, p + pa)
    in
    elements (0, self) d

let np d = count ~top:true d
let n d = fst (np d)
let p d = snd (np d)

let two_pointer_cells d =
  let n, p = np d in
  n + p

let structure_coded_cells d = n d

let is_linear d = p d = 0

let structuredness d =
  let n, p = np d in
  if n + p = 0 then 0. else float_of_int p /. float_of_int (n + p)
