(** S-expressions: the data objects of the mini-Lisp.

    An s-expression is either an atom (the empty list [nil], a symbol, an
    integer, or a string) or a cons pair of two s-expressions.  Lists are
    right-nested chains of pairs terminated by [Nil], exactly the
    representation of Figure 2.1 of the thesis. *)

type t =
  | Nil                 (** the empty list / false *)
  | Sym of string       (** an interned symbolic atom *)
  | Int of int          (** an integer atom *)
  | Str of string       (** a string atom *)
  | Cons of t * t       (** a pair: car and cdr *)

val nil : t
val sym : string -> t
val int : int -> t
val str : string -> t
val cons : t -> t -> t

(** [list xs] builds a proper list from [xs]. *)
val list : t list -> t

(** [of_ints xs] builds a proper list of integer atoms. *)
val of_ints : int list -> t

(** [to_list d] returns the elements of the proper list [d].
    @raise Invalid_argument if [d] is not a proper list. *)
val to_list : t -> t list

(** [car d] is the first component of a pair; [car Nil = Nil] following the
    permissive Lisp convention.  @raise Invalid_argument on other atoms. *)
val car : t -> t

(** [cdr d] is the second component of a pair; [cdr Nil = Nil].
    @raise Invalid_argument on other atoms. *)
val cdr : t -> t

val is_atom : t -> bool

(** [is_list d] holds iff [d] is a proper ([Nil]-terminated) list. *)
val is_list : t -> bool

val is_nil : t -> bool

(** Structural equality ([equal] in Lisp). *)
val equal : t -> t -> bool

(** Total order consistent with [equal]; used for sets/maps of datums. *)
val compare : t -> t -> int

(** Structural hash, consistent with [equal]. *)
val hash : t -> int

(** [length d] is the number of top-level elements of a proper list.
    @raise Invalid_argument if [d] is not a proper list. *)
val length : t -> int

(** [depth d] is the maximum nesting depth of lists in [d]; atoms have
    depth 0, [(a b c)] depth 1. *)
val depth : t -> int

(** [nth n d] is the [n]-th (0-based) element of proper list [d].
    @raise Invalid_argument if out of range. *)
val nth : int -> t -> t

(** [append a b] is list concatenation of the proper list [a] onto [b]. *)
val append : t -> t -> t

(** [rev d] reverses a proper list. *)
val rev : t -> t

(** [map f d] maps [f] over a proper list's elements. *)
val map : (t -> t) -> t -> t

(** [iter_atoms f d] applies [f] to every non-[Nil] atom of [d] in
    left-to-right order. *)
val iter_atoms : (t -> unit) -> t -> unit

(** [fold_cells f init d] folds over every cons cell of [d] in pre-order. *)
val fold_cells : ('a -> t -> 'a) -> 'a -> t -> 'a

(** Number of cons cells in the two-pointer representation of [d]. *)
val cell_count : t -> int

(** [subst ~old_ ~new_ d] structurally replaces every subterm equal to
    [old_] by [new_]. *)
val subst : old_:t -> new_:t -> t -> t
