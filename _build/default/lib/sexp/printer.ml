let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf (d : Datum.t) =
  match d with
  | Nil -> Format.pp_print_string ppf "nil"
  | Sym s -> Format.pp_print_string ppf s
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "\"%s\"" (escape s)
  | Cons _ ->
    Format.pp_print_char ppf '(';
    pp_tail ppf d;
    Format.pp_print_char ppf ')'

and pp_tail ppf = function
  | Datum.Cons (a, Nil) -> pp ppf a
  | Cons (a, (Cons _ as d)) ->
    pp ppf a;
    Format.pp_print_char ppf ' ';
    pp_tail ppf d
  | Cons (a, d) ->
    (* improper tail *)
    pp ppf a;
    Format.pp_print_string ppf " . ";
    pp ppf d
  | Nil | Sym _ | Int _ | Str _ -> assert false

let to_string d = Format.asprintf "%a" pp d
