(** Data-cache substrate for the LPT-vs-cache comparison of §5.2.5: a
    fully associative LRU cache with parametric line size. *)

module Lru_cache = Lru_cache
