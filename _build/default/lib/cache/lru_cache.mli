(** Fully associative data cache with true LRU replacement (§5.2.5).

    Addresses are in units of the cachable two-pointer list cell; a line
    holds [line_size] consecutive cells, so fetching a line prefetches the
    neighbours of the accessed cell — how a conventional cache exploits
    the spatial locality of linearised lists.  [lines] × [line_size] cells
    is the total capacity. *)

type t

(** @raise Invalid_argument unless both parameters are positive. *)
val create : lines:int -> line_size:int -> t

val lines : t -> int
val line_size : t -> int

(** [access t addr] touches the cell at [addr]; returns [true] on hit.
    On a miss the containing line is fetched, evicting the LRU line if
    full. *)
val access : t -> int -> bool

val hits : t -> int
val misses : t -> int
val accesses : t -> int
val hit_rate : t -> float

(** Number of lines currently resident. *)
val occupancy : t -> int

(** [mem t addr] tests residency without touching LRU state or counters. *)
val mem : t -> int -> bool
