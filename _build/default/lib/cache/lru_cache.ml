(* Hash table keyed by line tag + intrusive doubly-linked recency list:
   O(1) per access. *)

type node = {
  tag : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  lines : int;
  line_size : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable resident : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~lines ~line_size =
  if lines <= 0 || line_size <= 0 then
    invalid_arg "Lru_cache.create: lines and line_size must be positive";
  { lines; line_size; table = Hashtbl.create (2 * lines); head = None; tail = None;
    resident = 0; hits = 0; misses = 0 }

let lines t = t.lines
let line_size t = t.line_size

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with
   | Some h -> h.prev <- Some node
   | None -> t.tail <- Some node);
  t.head <- Some node

let tag_of t addr = if addr >= 0 then addr / t.line_size else ((addr + 1) / t.line_size) - 1

let access t addr =
  let tag = tag_of t addr in
  match Hashtbl.find_opt t.table tag with
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    true
  | None ->
    t.misses <- t.misses + 1;
    if t.resident = t.lines then begin
      match t.tail with
      | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.tag;
        t.resident <- t.resident - 1
      | None -> assert false
    end;
    let node = { tag; prev = None; next = None } in
    Hashtbl.replace t.table tag node;
    push_front t node;
    t.resident <- t.resident + 1;
    false

let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let hit_rate t =
  let total = accesses t in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let occupancy t = t.resident

let mem t addr = Hashtbl.mem t.table (tag_of t addr)
