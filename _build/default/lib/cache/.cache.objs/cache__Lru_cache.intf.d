lib/cache/lru_cache.mli:
