lib/cache/lru_cache.ml: Hashtbl
