lib/cache/cache.ml: Lru_cache
