type result = {
  n_dist : Util.Dist.t;
  p_dist : Util.Dist.t;
}

let analyze (trace : Trace.Preprocess.t) =
  (* dynamic statistics: every reference to a list contributes its n and
     p, so hot lists weigh in proportion to how often they are touched *)
  let n_dist = Util.Dist.create () and p_dist = Util.Dist.create () in
  Array.iter
    (fun id ->
       let n, p = trace.np_by_id.(id) in
       Util.Dist.add n_dist (float_of_int n);
       Util.Dist.add p_dist (float_of_int p))
    (Trace.Preprocess.prim_refs trace);
  { n_dist; p_dist }

let mean_n r = Util.Dist.mean r.n_dist
let mean_p r = Util.Dist.mean r.p_dist
let n_cumulative r = Util.Dist.cumulative r.n_dist
let p_cumulative r = Util.Dist.cumulative r.p_dist
