type result = {
  counts : (Trace.Event.prim * int) list;
  total : int;
}

let analyze capture =
  let tbl = Hashtbl.create 8 in
  let total = ref 0 in
  Array.iter
    (fun (e : Trace.Event.t) ->
       match e with
       | Prim { prim; _ } ->
         incr total;
         Hashtbl.replace tbl prim (1 + Option.value ~default:0 (Hashtbl.find_opt tbl prim))
       | Call _ | Return _ -> ())
    (Trace.Capture.events capture);
  {
    counts =
      List.map
        (fun p -> (p, Option.value ~default:0 (Hashtbl.find_opt tbl p)))
        Trace.Event.all_prims;
    total = !total;
  }

let pct r prim =
  if r.total = 0 then 0.
  else
    100.
    *. float_of_int (Option.value ~default:0 (List.assoc_opt prim r.counts))
    /. float_of_int r.total
