(** The n/p complexity measures over the lists of a trace (§3.3.1,
    Table 3.1 and Figures 3.3a/3.3b): for every list reference in the
    stream, the referenced list's n (number of symbols) and p (number of
    internal parenthesis pairs) are recorded — dynamic statistics, so a
    list weighs in proportion to how often it is touched. *)

type result = {
  n_dist : Util.Dist.t;
  p_dist : Util.Dist.t;
}

val analyze : Trace.Preprocess.t -> result

val mean_n : result -> float
val mean_p : result -> float

(** Cumulative distributions for Figs 3.3a/3.3b: [(value, fraction)] . *)
val n_cumulative : result -> (float * float) list

val p_cumulative : result -> (float * float) list
