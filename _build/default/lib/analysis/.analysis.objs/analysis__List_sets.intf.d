lib/analysis/list_sets.mli: Trace
