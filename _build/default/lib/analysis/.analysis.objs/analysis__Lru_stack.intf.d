lib/analysis/lru_stack.mli: Hashtbl
