lib/analysis/prim_mix.ml: Array Hashtbl List Option Trace
