lib/analysis/np_stats.ml: Array Trace Util
