lib/analysis/chaining.mli: Trace
