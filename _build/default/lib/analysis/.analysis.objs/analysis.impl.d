lib/analysis/analysis.ml: Chaining List_sets Lru_stack Np_stats Prim_mix
