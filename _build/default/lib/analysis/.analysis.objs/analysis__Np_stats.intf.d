lib/analysis/np_stats.mli: Trace Util
