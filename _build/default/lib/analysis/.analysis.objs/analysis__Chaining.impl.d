lib/analysis/chaining.ml: Array List Trace
