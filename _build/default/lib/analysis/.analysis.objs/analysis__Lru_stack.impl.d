lib/analysis/lru_stack.ml: Array Hashtbl List Option
