lib/analysis/prim_mix.mli: Trace
