lib/analysis/list_sets.ml: Array Float Hashtbl List Trace
