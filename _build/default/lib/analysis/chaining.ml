type result = {
  car_total : int;
  car_chained : int;
  cdr_total : int;
  cdr_chained : int;
  all_total : int;
  all_chained : int;
}

let analyze (trace : Trace.Preprocess.t) =
  let car_total = ref 0 and car_chained = ref 0 in
  let cdr_total = ref 0 and cdr_chained = ref 0 in
  let all_total = ref 0 and all_chained = ref 0 in
  Array.iter
    (fun (e : Trace.Preprocess.pevent) ->
       match e with
       | Pcall _ | Preturn _ -> ()
       | Pprim { prim; args; _ } ->
         let chained =
           List.exists
             (function
               | Trace.Preprocess.List { chained; _ } -> chained
               | Atom _ -> false)
             args
         in
         incr all_total;
         if chained then incr all_chained;
         (match prim with
          | Trace.Event.Car ->
            incr car_total;
            if chained then incr car_chained
          | Trace.Event.Cdr ->
            incr cdr_total;
            if chained then incr cdr_chained
          | Trace.Event.Cons | Trace.Event.Rplaca | Trace.Event.Rplacd -> ()))
    trace.events;
  { car_total = !car_total; car_chained = !car_chained; cdr_total = !cdr_total;
    cdr_chained = !cdr_chained; all_total = !all_total; all_chained = !all_chained }

let pct num den = if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den

let car_pct r = pct r.car_chained r.car_total
let cdr_pct r = pct r.cdr_chained r.cdr_total
let all_pct r = pct r.all_chained r.all_total
