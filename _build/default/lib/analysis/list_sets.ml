type set = {
  size : int;
  first : int;
  last : int;
}

type result = {
  sets : set list;
  stream_length : int;
}

let lifetime s = s.last - s.first

(* Growable union-find over set indices, with per-root set records. *)
module Uf = struct
  type t = {
    mutable parent : int array;
    mutable size : int array;     (* references in the set *)
    mutable first : int array;
    mutable last : int array;
    mutable len : int;
  }

  let create () =
    { parent = Array.make 64 0; size = Array.make 64 0; first = Array.make 64 0;
      last = Array.make 64 0; len = 0 }

  let grow t =
    let cap = Array.length t.parent in
    if t.len = cap then begin
      let extend a def =
        let b = Array.make (2 * cap) def in
        Array.blit a 0 b 0 cap;
        b
      in
      t.parent <- extend t.parent 0;
      t.size <- extend t.size 0;
      t.first <- extend t.first 0;
      t.last <- extend t.last 0
    end

  let fresh t pos =
    grow t;
    let i = t.len in
    t.len <- t.len + 1;
    t.parent.(i) <- i;
    t.size.(i) <- 0;
    t.first.(i) <- pos;
    t.last.(i) <- pos;
    i

  let rec find t i =
    if t.parent.(i) = i then i
    else begin
      let root = find t t.parent.(i) in
      t.parent.(i) <- root;
      root
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra = rb then ra
    else begin
      (* keep the larger as root *)
      let root, child = if t.size.(ra) >= t.size.(rb) then (ra, rb) else (rb, ra) in
      t.parent.(child) <- root;
      t.size.(root) <- t.size.(root) + t.size.(child);
      t.first.(root) <- min t.first.(root) t.first.(child);
      t.last.(root) <- max t.last.(root) t.last.(child);
      root
    end
end

(* Core pass.  For each primitive event we see its list references in
   order (args then result) and the relation edges (result related to each
   list argument).  Each reference joins the active set of its id if that
   set is still warm (within the window); relations merge active sets. *)
let partition_window ~window trace =
  let uf = Uf.create () in
  let active : (int, int) Hashtbl.t = Hashtbl.create 256 in  (* list id -> set idx *)
  let pos = ref 0 in
  let touch id related =
    let p = !pos in
    incr pos;
    let warm_set_of i =
      match Hashtbl.find_opt active i with
      | None -> None
      | Some s ->
        let root = Uf.find uf s in
        if p - uf.Uf.last.(root) <= window then Some root else None
    in
    let own = warm_set_of id in
    let rel = List.filter_map warm_set_of related in
    let chosen =
      match own, rel with
      | None, [] -> Uf.fresh uf p
      | Some s, rel -> List.fold_left (Uf.union uf) s rel
      | None, s :: rest -> List.fold_left (Uf.union uf) s rest
    in
    uf.Uf.size.(chosen) <- uf.Uf.size.(chosen) + 1;
    uf.Uf.last.(chosen) <- max uf.Uf.last.(chosen) p;
    Hashtbl.replace active id chosen;
    chosen
  in
  let set_stream = ref [] in
  Array.iter
    (fun (e : Trace.Preprocess.pevent) ->
       match e with
       | Pcall _ | Preturn _ -> ()
       | Pprim { args; result; _ } ->
         let arg_ids =
           List.filter_map
             (function Trace.Preprocess.List { id; _ } -> Some id | Atom _ -> None)
             args
         in
         (* The paper's relation: a reference is related to another when
            one is the car or cdr of the other — i.e. the result of a
            primitive relates to its list arguments.  Arguments are not
            related to each other directly (only through a result that
            combines them). *)
         List.iter (fun id -> set_stream := touch id [] :: !set_stream) arg_ids;
         (match result with
          | List { id; _ } -> set_stream := touch id arg_ids :: !set_stream
          | Atom _ -> ()))
    trace.Trace.Preprocess.events;
  (uf, Array.of_list (List.rev !set_stream), !pos)

let stream_length trace = Array.length (Trace.Preprocess.prim_refs trace)

let collect uf stream_length =
  let sets = ref [] in
  for i = 0 to uf.Uf.len - 1 do
    if Uf.find uf i = i && uf.Uf.size.(i) > 0 then
      sets := { size = uf.Uf.size.(i); first = uf.Uf.first.(i); last = uf.Uf.last.(i) }
              :: !sets
  done;
  { sets = !sets; stream_length }

let partition ?(separation = 0.10) trace =
  let n = stream_length trace in
  let window = max 1 (int_of_float (separation *. float_of_int n)) in
  let uf, _, len = partition_window ~window trace in
  collect uf len

let partition_abs ~window trace =
  let uf, _, len = partition_window ~window:(max 1 window) trace in
  collect uf len

let set_id_stream ?(separation = 0.10) trace =
  let n = stream_length trace in
  let window = max 1 (int_of_float (separation *. float_of_int n)) in
  let uf, stream, _ = partition_window ~window trace in
  (* Resolve each recorded set index to its final root. *)
  Array.map (Uf.find uf) stream

let coverage_curve r =
  let total = float_of_int r.stream_length in
  let sorted = List.sort (fun a b -> compare b.size a.size) r.sets in
  let _, _, points =
    List.fold_left
      (fun (cum, k, acc) s ->
         let cum = cum + s.size in
         (cum, k + 1, (float_of_int (k + 1), float_of_int cum /. total) :: acc))
      (0, 0, []) sorted
  in
  List.rev points

let lifetime_over_sets r =
  let nsets = float_of_int (List.length r.sets) in
  let len = float_of_int (max 1 r.stream_length) in
  let lifetimes =
    List.sort Float.compare
      (List.map (fun s -> 100. *. float_of_int (lifetime s) /. len) r.sets)
  in
  List.mapi (fun i x -> (x, float_of_int (i + 1) /. nsets)) lifetimes

let lifetime_over_refs r =
  let total = float_of_int r.stream_length in
  let len = float_of_int (max 1 r.stream_length) in
  let by_lifetime =
    List.sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (List.map (fun s -> (100. *. float_of_int (lifetime s) /. len, s.size)) r.sets)
  in
  let _, points =
    List.fold_left
      (fun (cum, acc) (lt, size) ->
         let cum = cum + size in
         (cum, (lt, float_of_int cum /. total) :: acc))
      (0, []) by_lifetime
  in
  List.rev points

let sets_for_coverage r frac =
  let rec go k = function
    | [] -> k
    | (_, covered) :: rest -> if covered >= frac then k + 1 else go (k + 1) rest
  in
  go 0 (coverage_curve r)
