type result = {
  distances : (int, int) Hashtbl.t;
  cold : int;
  total : int;
}

(* Move-to-front list; the position of an item at access time is its stack
   distance.  O(stream * distinct), fine for the set-level streams here. *)
let analyze stream =
  let distances = Hashtbl.create 64 in
  let cold = ref 0 in
  let stack = ref [] in
  let bump d =
    Hashtbl.replace distances d (1 + Option.value ~default:0 (Hashtbl.find_opt distances d))
  in
  Array.iter
    (fun x ->
       let rec remove depth acc = function
         | [] -> None
         | y :: rest ->
           if y = x then Some (depth, List.rev_append acc rest)
           else remove (depth + 1) (y :: acc) rest
       in
       match remove 1 [] !stack with
       | Some (depth, rest) ->
         bump depth;
         stack := x :: rest
       | None ->
         incr cold;
         stack := x :: !stack)
    stream;
  { distances; cold = !cold; total = Array.length stream }

let hit_fraction r k =
  if r.total = 0 then 0.
  else begin
    let hits = ref 0 in
    Hashtbl.iter (fun d c -> if d <= k then hits := !hits + c) r.distances;
    float_of_int !hits /. float_of_int r.total
  end

let curve r ~max_depth =
  List.init max_depth (fun i ->
      let k = i + 1 in
      (float_of_int k, hit_fraction r k))

let naive_hits stream ~size =
  let stack = ref [] in
  let hits = ref 0 in
  Array.iter
    (fun x ->
       let present = List.mem x !stack in
       if present then incr hits;
       let without = List.filter (fun y -> y <> x) !stack in
       let with_x = x :: without in
       stack :=
         if List.length with_x > size then List.filteri (fun i _ -> i < size) with_x
         else with_x)
    stream;
  !hits
