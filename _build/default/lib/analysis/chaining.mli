(** Primitive function chaining (§3.3.2.3, Table 3.2).

    Chaining occurs when the value returned by one primitive is
    immediately passed to another (possibly across intervening function
    calls, since those create or modify no list pointers).  The
    preprocessing stage already marks chained arguments; this module
    aggregates the percentages per primitive. *)

type result = {
  car_total : int;
  car_chained : int;
  cdr_total : int;
  cdr_chained : int;
  all_total : int;       (** all five primitives *)
  all_chained : int;
}

val analyze : Trace.Preprocess.t -> result

val car_pct : result -> float
val cdr_pct : result -> float
val all_pct : result -> float
