(** List-set partitioning of a Lisp list access stream (§3.3.2.1) — the
    thesis's representation-independent measure of structural locality.

    Two list references are {e related} if one is the car or cdr of the
    other (we also relate cons/rplac results to their list arguments, the
    closure of "structurally derived from").  A {e list set} is a closure
    of related references, with the {e separation constraint}: no two
    temporally adjacent members of a set may be more than a window W apart
    in the reference stream — a set that falls quiet for W references is
    closed, and later references to the same structure open a new set.
    The set's {e lifetime} is the distance between its first and last
    member; its {e size} is the number of references it contains. *)

type set = {
  size : int;        (** references in the set *)
  first : int;       (** stream position of the first reference *)
  last : int;        (** stream position of the last reference *)
}

type result = {
  sets : set list;       (** every list set, in no particular order *)
  stream_length : int;   (** total list references in the stream *)
}

val lifetime : set -> int

(** [partition ?separation trace] partitions the reference stream of a
    preprocessed trace.  [separation] is the window as a fraction of the
    stream length (default 0.10, the thesis's 10%); use
    [partition_abs ~window] for an absolute window (the fixed-constraint
    experiments of Figs 3.11–3.13). *)
val partition : ?separation:float -> Trace.Preprocess.t -> result

val partition_abs : window:int -> Trace.Preprocess.t -> result

(** [set_id_stream ?separation trace] maps every reference of the stream
    to the index of the list set it belongs to — input for the LRU stack
    analysis of Fig 3.7.  Set indices are dense but arbitrary. *)
val set_id_stream : ?separation:float -> Trace.Preprocess.t -> int array

(** Figure 3.4: cumulative fraction of all references covered by the [k]
    largest list sets, for k = 1.. — points [(k, fraction)]. *)
val coverage_curve : result -> (float * float) list

(** Figure 3.5: cumulative fraction of list sets with lifetime <= x, where
    x is a percentage of the stream length — points [(x_pct, fraction)]. *)
val lifetime_over_sets : result -> (float * float) list

(** Figure 3.6: cumulative fraction of references belonging to sets with
    lifetime <= x percent of stream length — points [(x_pct, fraction)]. *)
val lifetime_over_refs : result -> (float * float) list

(** [sets_for_coverage result frac] is the number of largest sets needed
    to cover at least [frac] of all references (the "about 10 sets cover
    80%" observation). *)
val sets_for_coverage : result -> float -> int
