type strategy = Deep | Shallow | Value_cache

exception Unbound of string

type binding = { name : string; cell : Value.t ref }

type cache_entry = { mutable value : Value.t; mutable frame : int; mutable valid : bool }

type t = {
  strategy : strategy;
  (* deep / value-cache state *)
  mutable alist : binding list;
  mutable frames : int list;              (* bindings added per open frame *)
  (* shallow state *)
  oblist : (string, Value.t ref) Hashtbl.t;
  mutable save_stack : (string * Value.t option) list list;
  (* value cache *)
  cache : (string, cache_entry) Hashtbl.t;
  mutable cached_names : string list list; (* per frame, names to invalidate *)
  (* counters *)
  mutable lookups : int;
  mutable probes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable binds : int;
  mutable unbinds : int;
}

let create strategy =
  { strategy; alist = []; frames = []; oblist = Hashtbl.create 64; save_stack = [];
    cache = Hashtbl.create 64; cached_names = []; lookups = 0; probes = 0;
    cache_hits = 0; cache_misses = 0; binds = 0; unbinds = 0 }

let strategy t = t.strategy

let depth t =
  match t.strategy with
  | Shallow -> List.length t.save_stack
  | Deep | Value_cache -> List.length t.frames

let invalidate_cache t name =
  match Hashtbl.find_opt t.cache name with
  | Some e -> e.valid <- false
  | None -> ()

let enter_frame t =
  match t.strategy with
  | Shallow -> t.save_stack <- [] :: t.save_stack
  | Deep -> t.frames <- 0 :: t.frames
  | Value_cache ->
    t.frames <- 0 :: t.frames;
    t.cached_names <- [] :: t.cached_names

let bind t name v =
  t.binds <- t.binds + 1;
  let deep_bind () =
    t.alist <- { name; cell = ref v } :: t.alist;
    match t.frames with
    | n :: rest -> t.frames <- (n + 1) :: rest
    | [] -> ()  (* top level: binding is permanent *)
  in
  match t.strategy with
  | Deep -> deep_bind ()
  | Value_cache ->
    deep_bind ();
    (* A fresh binding shadows whatever the cache holds for this name. *)
    invalidate_cache t name
  | Shallow ->
    let old = Option.map (fun cell -> !cell) (Hashtbl.find_opt t.oblist name) in
    (match t.save_stack with
     | frame :: rest -> t.save_stack <- ((name, old) :: frame) :: rest
     | [] ->
       (* binding at top level: nothing to restore, still track in a
          permanent pseudo-frame *)
       ());
    (match Hashtbl.find_opt t.oblist name with
     | Some cell -> cell := v
     | None -> Hashtbl.replace t.oblist name (ref v))

let exit_frame t =
  let drop n =
    let rec go n l = if n = 0 then l else match l with
      | [] -> []
      | _ :: tl -> go (n - 1) tl
    in
    t.unbinds <- t.unbinds + n;
    t.alist <- go n t.alist
  in
  match t.strategy with
  | Deep ->
    (match t.frames with
     | n :: rest ->
       drop n;
       t.frames <- rest
     | [] -> invalid_arg "Env.exit_frame: no frame")
  | Value_cache ->
    (match t.frames, t.cached_names with
     | n :: rest, cached :: crest ->
       drop n;
       (* Entries cached during this frame may name bindings that are about
          to disappear: invalidate them (Fig 2.5's frame-number check). *)
       List.iter (invalidate_cache t) cached;
       t.frames <- rest;
       t.cached_names <- crest
     | _ -> invalid_arg "Env.exit_frame: no frame")
  | Shallow ->
    (match t.save_stack with
     | frame :: rest ->
       t.unbinds <- t.unbinds + List.length frame;
       List.iter
         (fun (name, old) ->
            match old with
            | Some v ->
              (match Hashtbl.find_opt t.oblist name with
               | Some cell -> cell := v
               | None -> Hashtbl.replace t.oblist name (ref v))
            | None -> Hashtbl.remove t.oblist name)
         frame;
       t.save_stack <- rest
     | [] -> invalid_arg "Env.exit_frame: no frame")

let deep_find t name =
  let rec go probes = function
    | [] ->
      t.probes <- t.probes + probes;
      None
    | b :: rest ->
      if String.equal b.name name then begin
        t.probes <- t.probes + probes + 1;
        Some b.cell
      end
      else go (probes + 1) rest
  in
  go 0 t.alist

let lookup_opt t name =
  t.lookups <- t.lookups + 1;
  match t.strategy with
  | Deep -> Option.map (fun cell -> !cell) (deep_find t name)
  | Shallow ->
    t.probes <- t.probes + 1;
    Option.map (fun cell -> !cell) (Hashtbl.find_opt t.oblist name)
  | Value_cache ->
    (match Hashtbl.find_opt t.cache name with
     | Some e when e.valid ->
       t.cache_hits <- t.cache_hits + 1;
       t.probes <- t.probes + 1;
       Some e.value
     | _ ->
       t.cache_misses <- t.cache_misses + 1;
       (match deep_find t name with
        | None -> None
        | Some cell ->
          let v = !cell in
          let frame = depth t in
          (match Hashtbl.find_opt t.cache name with
           | Some e ->
             e.value <- v;
             e.frame <- frame;
             e.valid <- true
           | None -> Hashtbl.replace t.cache name { value = v; frame; valid = true });
          (match t.cached_names with
           | top :: rest -> t.cached_names <- (name :: top) :: rest
           | [] -> ());
          Some v))

let lookup t name =
  match lookup_opt t name with
  | Some v -> v
  | None -> raise (Unbound name)

let define_global t name v =
  t.binds <- t.binds + 1;
  match t.strategy with
  | Shallow -> Hashtbl.replace t.oblist name (ref v)
  | Deep | Value_cache ->
    (* Append at the tail so the binding survives all frame exits (frame
       counters track head prepends only). *)
    let b = { name; cell = ref v } in
    t.alist <- t.alist @ [ b ];
    if t.strategy = Value_cache then invalidate_cache t name

let set t name v =
  match t.strategy with
  | Deep ->
    (match deep_find t name with
     | Some cell -> cell := v
     | None -> define_global t name v)
  | Shallow ->
    t.probes <- t.probes + 1;
    (match Hashtbl.find_opt t.oblist name with
     | Some cell -> cell := v
     | None ->
       (* A top-level value that frame exits must not remove: make it look
          bound at every live frame by not recording a save entry. *)
       Hashtbl.replace t.oblist name (ref v))
  | Value_cache ->
    (match deep_find t name with
     | Some cell ->
       cell := v;
       invalidate_cache t name
     | None -> define_global t name v)

type snapshot =
  | Deep_snap of binding list
  | Shallow_snap of (string * Value.t) list

let capture t =
  match t.strategy with
  | Deep | Value_cache -> Deep_snap t.alist
  | Shallow ->
    Shallow_snap (Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) t.oblist [])

let with_snapshot t snap f =
  match t.strategy, snap with
  | (Deep | Value_cache), Deep_snap alist ->
    let saved_alist = t.alist and saved_frames = t.frames in
    let saved_cached = t.cached_names in
    t.alist <- alist;
    t.frames <- [];
    t.cached_names <- [];
    Hashtbl.reset t.cache;
    Fun.protect
      ~finally:(fun () ->
          t.alist <- saved_alist;
          t.frames <- saved_frames;
          t.cached_names <- saved_cached;
          Hashtbl.reset t.cache)
      f
  | Shallow, Shallow_snap entries ->
    let saved = Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) t.oblist [] in
    let saved_stack = t.save_stack in
    Hashtbl.reset t.oblist;
    List.iter (fun (name, v) -> Hashtbl.replace t.oblist name (ref v)) entries;
    t.save_stack <- [];
    Fun.protect
      ~finally:(fun () ->
          Hashtbl.reset t.oblist;
          List.iter (fun (name, v) -> Hashtbl.replace t.oblist name (ref v)) saved;
          t.save_stack <- saved_stack)
      f
  | (Deep | Value_cache | Shallow), _ ->
    invalid_arg "Env.with_snapshot: snapshot from a different strategy"

type counters = {
  lookups : int;
  probes : int;
  cache_hits : int;
  cache_misses : int;
  binds : int;
  unbinds : int;
}

let counters (t : t) =
  { lookups = t.lookups; probes = t.probes; cache_hits = t.cache_hits;
    cache_misses = t.cache_misses; binds = t.binds; unbinds = t.unbinds }
