(** Library functions written in the mini-Lisp itself.

    The thesis's traces capture the primitive-call stream of real Lisp
    programs; if list utilities like [append] were OCaml builtins their
    car/cdr/cons activity would vanish from the trace.  They are therefore
    defined in Lisp and interpreted, so every list they touch shows up as
    genuine primitive traffic. *)

(** The prelude source: length, append, reverse, assoc, assq, member,
    memq, nth, last, copy, subst, mapcar, filter, nconc, list2..list5. *)
val source : string

(** [load interp] evaluates the prelude in [interp] (with tracing hooks
    disabled, so the prelude's own definitions do not pollute a trace). *)
val load : Interp.t -> unit
