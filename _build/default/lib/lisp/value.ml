type t =
  | Nil
  | T
  | Sym of string
  | Int of int
  | Str of string
  | Pair of pair
  | Subr of string
  | Lambda of lambda
  | Funarg of int   (* key into the interpreter's funarg table *)

and pair = { mutable car : t; mutable cdr : t }

and lambda = {
  params : string list;
  body : t list;
}

let nil = Nil
let t_ = T
let sym s = Sym s
let int n = Int n
let cons a d = Pair { car = a; cdr = d }

let list vs = List.fold_right cons vs Nil

let rec of_datum (d : Sexp.Datum.t) : t =
  match d with
  | Nil -> Nil
  | Sym "t" -> T
  | Sym s -> Sym s
  | Int n -> Int n
  | Str s -> Str s
  | Cons (a, x) -> cons (of_datum a) (of_datum x)

let to_datum v =
  (* Cycle-safe: cut when revisiting a pair already on the current path. *)
  let rec go path (v : t) : Sexp.Datum.t =
    match v with
    | Nil -> Nil
    | T -> Sym "t"
    | Sym s -> Sym s
    | Int n -> Int n
    | Str s -> Str s
    | Subr name -> Sym ("#subr:" ^ name)
    | Lambda _ -> Sym "#lambda"
    | Funarg k -> Sym (Printf.sprintf "#funarg%d" k)
    | Pair p ->
      if List.memq p path then Sym "<cycle>"
      else Cons (go (p :: path) p.car, go (p :: path) p.cdr)
  in
  go [] v

let truthy = function
  | Nil -> false
  | T | Sym _ | Int _ | Str _ | Pair _ | Subr _ | Lambda _ | Funarg _ -> true

let equal a b =
  let rec go depth a b =
    if depth > 10_000 then true (* deep or cyclic: treat as equal beyond bound *)
    else
      match a, b with
      | Nil, Nil | T, T -> true
      | Sym x, Sym y -> String.equal x y
      | Int x, Int y -> x = y
      | Str x, Str y -> String.equal x y
      | Subr x, Subr y -> String.equal x y
      | Lambda x, Lambda y -> x == y
      | Funarg x, Funarg y -> x = y
      | Pair x, Pair y ->
        x == y || (go (depth + 1) x.car y.car && go (depth + 1) x.cdr y.cdr)
      | (Nil | T | Sym _ | Int _ | Str _ | Pair _ | Subr _ | Lambda _ | Funarg _), _ ->
        false
  in
  go 0 a b

let eq a b =
  match a, b with
  | Pair x, Pair y -> x == y
  | Lambda x, Lambda y -> x == y
  | (Nil | T | Sym _ | Int _ | Str _ | Subr _ | Funarg _), _ -> a = b
  | (Pair _ | Lambda _), _ -> false

let is_atom = function
  | Pair _ -> false
  | Nil | T | Sym _ | Int _ | Str _ | Subr _ | Lambda _ | Funarg _ -> true

let pp ppf v = Sexp.pp ppf (to_datum v)
let to_string v = Sexp.to_string (to_datum v)
