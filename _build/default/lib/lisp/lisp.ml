(** The mini-Lisp system: runtime values with mutable pairs, the three
    dynamic-binding environment implementations of §2.3.2, the Lisp
    1.0-level interpreter of §4.3.4, a Lisp-coded prelude, and the trace
    instrumentation of §3.3.1. *)

module Value = Value
module Env = Env
module Interp = Interp
module Prelude = Prelude
module Tracer = Tracer
