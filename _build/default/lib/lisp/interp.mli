(** The mini-Lisp interpreter.

    The language is the Lisp 1.0-level subset of §4.3.4: the list
    primitives (car, cdr, cons, rplaca, rplacd), cond and prog (with go
    and return), predicates (atom, null, eq, equal, greaterp, lessp,
    zerop, numberp), integer arithmetic, logical and/or/not, setq,
    read/write, def and lambda — plus progn, let, if and while as
    conveniences.  Evaluation is dynamically scoped over an {!Env}
    environment; functions live in a separate function table, Franz
    style.

    Tracing hooks observe every list-primitive call (name, argument
    values, result) and user-function entry/exit — the instrumentation of
    §3.3.1. *)

type t

exception Error of string

type hooks = {
  on_prim : string -> Value.t list -> Value.t -> unit;
  on_call : string -> int -> unit;
  on_return : string -> unit;
}

val no_hooks : hooks

(** [create ()] makes an interpreter with an empty environment.
    [strategy] defaults to [Deep]; [max_steps] (default 50 million) bounds
    evaluation to catch runaway programs. *)
val create : ?strategy:Env.strategy -> ?max_steps:int -> ?hooks:hooks -> unit -> t

val set_hooks : t -> hooks -> unit

val env : t -> Env.t

(** [eval t v] evaluates a value (use {!Value.of_datum} or [eval_datum]).
    @raise Error on Lisp errors. *)
val eval : t -> Value.t -> Value.t

val eval_datum : t -> Sexp.Datum.t -> Value.t

(** [run_program t source] parses all datums in [source] and evaluates
    them in order, returning the last result ([Nil] for empty source).
    Definitions persist in the interpreter. *)
val run_program : t -> string -> Value.t

(** [provide_input t ds] queues datums for the [read] primitive (FIFO);
    [read] returns [Nil] when the queue is exhausted. *)
val provide_input : t -> Sexp.Datum.t list -> unit

(** Datums written by [write]/[print], in order. *)
val output : t -> Sexp.Datum.t list

val clear_output : t -> unit

(** Number of evaluation steps performed. *)
val steps : t -> int

(** [defined_functions t] lists user-defined function names. *)
val defined_functions : t -> string list
