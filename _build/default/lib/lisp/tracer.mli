(** Interpreter instrumentation: the modified-interpreter trace capture of
    §3.3.1.  Attaching a tracer records every list-primitive call (with its
    arguments and result in s-expression form) and every user-function
    entry/exit into a {!Trace.Capture.t}. *)

(** [attach interp] installs tracing hooks and returns the capture being
    filled. *)
val attach : Interp.t -> Trace.Capture.t

(** [detach interp] removes the hooks. *)
val detach : Interp.t -> unit

(** [trace_program ?strategy ?input source] creates a fresh interpreter,
    loads the prelude untraced, then runs [source] with tracing: the
    standard way to produce a workload trace. *)
val trace_program :
  ?strategy:Env.strategy ->
  ?input:Sexp.Datum.t list ->
  string ->
  Trace.Capture.t
