(** Dynamic-binding environments, in the three implementations surveyed in
    §2.3.2, with instrumentation for the binding-strategy ablation bench:

    - [Deep]: an association list of name/value bindings (Figure 2.3) —
      O(1) call/return, O(depth) name lookup;
    - [Shallow]: an oblist of value cells plus a save stack (Figure 2.4) —
      O(1) lookup, extra work per call/return;
    - [Value_cache]: deep binding behind a FACOM Alpha-style value cache
      (Figure 2.5) — entries are tagged with the stack frame number and
      invalidated on binding and on frame exit. *)

type strategy = Deep | Shallow | Value_cache

type t

exception Unbound of string

val create : strategy -> t

val strategy : t -> strategy

(** Current dynamic nesting depth (global frame = 0). *)
val depth : t -> int

(** [enter_frame t] opens the referencing context of a function call. *)
val enter_frame : t -> unit

(** [bind t name v] adds a binding to the current frame. *)
val bind : t -> string -> Value.t -> unit

(** [exit_frame t] closes the current frame, restoring the environment to
    its state before the matching [enter_frame]. *)
val exit_frame : t -> unit

(** [lookup t name] interrogates the environment.
    @raise Unbound if no binding is visible. *)
val lookup : t -> string -> Value.t

val lookup_opt : t -> string -> Value.t option

(** [set t name v] assigns the most recent binding of [name], creating a
    global binding if none exists (setq semantics). *)
val set : t -> string -> Value.t -> unit

val define_global : t -> string -> Value.t -> unit

(** Funarg support (§2.2.1): a [snapshot] freezes the current referencing
    context; [with_snapshot] runs a computation inside it and restores
    the live environment afterwards — the function-environment pair of
    [Bobr73a]. *)
type snapshot

val capture : t -> snapshot

val with_snapshot : t -> snapshot -> (unit -> 'a) -> 'a

type counters = {
  lookups : int;         (** environment interrogations *)
  probes : int;          (** a-list cells examined / table touches *)
  cache_hits : int;      (** value-cache strategy only *)
  cache_misses : int;
  binds : int;
  unbinds : int;
}

val counters : t -> counters
