let attach interp =
  let capture = Trace.Capture.create () in
  Interp.set_hooks interp
    {
      Interp.on_prim =
        (fun name args result ->
           match Trace.Event.prim_of_name name with
           | Some prim ->
             Trace.Capture.record capture
               (Trace.Event.Prim
                  { prim;
                    args = List.map Value.to_datum args;
                    result = Value.to_datum result })
           | None -> ());
      on_call =
        (fun name nargs -> Trace.Capture.record capture (Trace.Event.Call { name; nargs }));
      on_return =
        (fun name -> Trace.Capture.record capture (Trace.Event.Return { name }));
    };
  capture

let detach interp = Interp.set_hooks interp Interp.no_hooks

let trace_program ?strategy ?(input = []) source =
  let interp = Interp.create ?strategy () in
  Prelude.load interp;
  Interp.provide_input interp input;
  let capture = attach interp in
  ignore (Interp.run_program interp source);
  detach interp;
  capture
