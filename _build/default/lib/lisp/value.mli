(** Runtime values of the mini-Lisp.

    Pairs are mutable (rplaca/rplacd are real destructive operations, as in
    any Lisp), so values are distinct heap objects even when structurally
    equal — the property the trace preprocessing of §5.2.1 has to recover
    statistically. *)

type t =
  | Nil
  | T                          (** the true atom *)
  | Sym of string
  | Int of int
  | Str of string
  | Pair of pair
  | Subr of string             (** a primitive, by name *)
  | Lambda of lambda           (** a user function body (unevaluated) *)
  | Funarg of int              (** a function-environment pair (§2.2.1),
                                   keyed into the interpreter's table *)

and pair = { mutable car : t; mutable cdr : t }

and lambda = {
  params : string list;
  body : t list;               (** body forms, evaluated in sequence *)
}

val nil : t
val t_ : t
val sym : string -> t
val int : int -> t
val cons : t -> t -> t

(** Build a proper list. *)
val list : t list -> t

(** [of_datum d] converts a read s-expression to a value (fresh pairs). *)
val of_datum : Sexp.Datum.t -> t

(** [to_datum v] snapshots a value as an s-expression, for tracing and
    printing.  Cycles introduced by rplacd are cut with the symbol
    [<cycle>]; non-list atoms convert naturally. *)
val to_datum : t -> Sexp.Datum.t

(** Lisp truth: everything but [Nil] is true. *)
val truthy : t -> bool

(** Structural equality ([equal]); compares pairs recursively (cycle-safe
    up to a large depth bound). *)
val equal : t -> t -> bool

(** Identity equality ([eq]): atoms by value, pairs by physical identity. *)
val eq : t -> t -> bool

val is_atom : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
