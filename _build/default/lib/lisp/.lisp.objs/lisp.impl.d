lib/lisp/lisp.ml: Env Interp Prelude Tracer Value
