lib/lisp/tracer.mli: Env Interp Sexp Trace
