lib/lisp/tracer.ml: Interp List Prelude Trace Value
