lib/lisp/env.mli: Value
