lib/lisp/prelude.ml: Interp
