lib/lisp/value.ml: List Printf Sexp String
