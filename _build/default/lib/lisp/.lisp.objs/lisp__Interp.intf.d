lib/lisp/interp.mli: Env Sexp Value
