lib/lisp/prelude.mli: Interp
