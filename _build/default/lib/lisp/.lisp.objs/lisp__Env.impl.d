lib/lisp/env.ml: Fun Hashtbl List Option String Value
