lib/lisp/interp.ml: Array Env Format Fun Hashtbl List Printf Queue Sexp Value
