lib/lisp/value.mli: Format Sexp
