let source = {|
; Iterative library functions (prog/go loops, like compiled Lisp library
; code): they add list-primitive traffic without deep call nesting.

(def length (lambda (l)
  (prog (n)
    (setq n 0)
    loop
    (cond ((null l) (return n)))
    (setq n (add1 n))
    (setq l (cdr l))
    (go loop))))

(def revappend (lambda (a b)
  (prog ()
    loop
    (cond ((null a) (return b)))
    (setq b (cons (car a) b))
    (setq a (cdr a))
    (go loop))))

(def reverse (lambda (l) (revappend l nil)))

(def append (lambda (a b) (revappend (reverse a) b)))

(def assoc (lambda (key al)
  (prog ()
    loop
    (cond ((null al) (return nil))
          ((equal (car (car al)) key) (return (car al))))
    (setq al (cdr al))
    (go loop))))

(def assq (lambda (key al)
  (prog ()
    loop
    (cond ((null al) (return nil))
          ((eq (car (car al)) key) (return (car al))))
    (setq al (cdr al))
    (go loop))))

(def member (lambda (x l)
  (prog ()
    loop
    (cond ((null l) (return nil))
          ((equal (car l) x) (return l)))
    (setq l (cdr l))
    (go loop))))

(def memq (lambda (x l)
  (prog ()
    loop
    (cond ((null l) (return nil))
          ((eq (car l) x) (return l)))
    (setq l (cdr l))
    (go loop))))

(def nth (lambda (n l)
  (prog ()
    loop
    (cond ((null l) (return nil))
          ((zerop n) (return (car l))))
    (setq n (sub1 n))
    (setq l (cdr l))
    (go loop))))

(def last (lambda (l)
  (prog ()
    (cond ((null l) (return nil)))
    loop
    (cond ((null (cdr l)) (return l)))
    (setq l (cdr l))
    (go loop))))

(def copy (lambda (l)
  (cond ((atom l) l)
        (t (cons (copy (car l)) (copy (cdr l)))))))

(def subst (lambda (new old l)
  (cond ((equal l old) new)
        ((atom l) l)
        (t (cons (subst new old (car l)) (subst new old (cdr l)))))))

(def mapcar (lambda (f l)
  (prog (acc)
    loop
    (cond ((null l) (return (reverse acc))))
    (setq acc (cons (f (car l)) acc))
    (setq l (cdr l))
    (go loop))))

(def filter (lambda (f l)
  (prog (acc)
    loop
    (cond ((null l) (return (reverse acc)))
          ((f (car l)) (setq acc (cons (car l) acc))))
    (setq l (cdr l))
    (go loop))))

(def nconc (lambda (a b)
  (cond ((null a) b)
        (t (rplacd (last a) b) a))))

(def list2 (lambda (a b) (cons a (cons b nil))))
(def list3 (lambda (a b c) (cons a (list2 b c))))
(def list4 (lambda (a b c d) (cons a (list3 b c d))))
(def list5 (lambda (a b c d e) (cons a (list4 b c d e))))
|}

let load interp =
  (* Loading must not appear in traces: definitions alone generate no
     primitive events, but be explicit about intent anyway. *)
  ignore (Interp.run_program interp source)
