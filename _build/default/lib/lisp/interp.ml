exception Error of string

type hooks = {
  on_prim : string -> Value.t list -> Value.t -> unit;
  on_call : string -> int -> unit;
  on_return : string -> unit;
}

let no_hooks =
  { on_prim = (fun _ _ _ -> ()); on_call = (fun _ _ -> ()); on_return = (fun _ -> ()) }

type t = {
  env : Env.t;
  fns : (string, Value.lambda) Hashtbl.t;
  funargs : (int, Value.lambda * Env.snapshot) Hashtbl.t;
  mutable next_funarg : int;
  mutable hooks : hooks;
  input : Sexp.Datum.t Queue.t;
  mutable output_rev : Sexp.Datum.t list;
  mutable steps : int;
  max_steps : int;
}

(* prog control flow *)
exception Go of string
exception Return_from_prog of Value.t

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let create ?(strategy = Env.Deep) ?(max_steps = 50_000_000) ?(hooks = no_hooks) () =
  { env = Env.create strategy; fns = Hashtbl.create 64;
    funargs = Hashtbl.create 8; next_funarg = 0; hooks;
    input = Queue.create (); output_rev = []; steps = 0; max_steps }

let set_hooks t hooks = t.hooks <- hooks

let env t = t.env

let provide_input t ds = List.iter (fun d -> Queue.add d t.input) ds

let output t = List.rev t.output_rev

let clear_output t = t.output_rev <- []

let steps t = t.steps

let defined_functions t = Hashtbl.fold (fun k _ acc -> k :: acc) t.fns []

(* ---- primitives ---- *)

let as_int name = function
  | Value.Int n -> n
  | v -> fail "%s: expected integer, got %s" name (Value.to_string v)

let as_pair name = function
  | Value.Pair p -> p
  | v -> fail "%s: expected a list cell, got %s" name (Value.to_string v)

let bool_v b = if b then Value.T else Value.Nil

(* The primitive table: name -> arity, implementation.  The five list
   primitives fire the on_prim hook; that is the entire trace surface of
   §3.3.1. *)
let prim_arity = Hashtbl.create 64

let prims : (string, t -> Value.t list -> Value.t) Hashtbl.t = Hashtbl.create 64

let defprim name arity fn =
  Hashtbl.replace prim_arity name arity;
  Hashtbl.replace prims name fn

let () =
  (* list primitives *)
  defprim "car" 1 (fun _ args ->
      match args with
      | [ Value.Nil ] -> Value.Nil
      | [ v ] -> (as_pair "car" v).car
      | _ -> assert false);
  defprim "cdr" 1 (fun _ args ->
      match args with
      | [ Value.Nil ] -> Value.Nil
      | [ v ] -> (as_pair "cdr" v).cdr
      | _ -> assert false);
  defprim "cons" 2 (fun _ args ->
      match args with
      | [ a; d ] -> Value.cons a d
      | _ -> assert false);
  defprim "rplaca" 2 (fun _ args ->
      match args with
      | [ v; x ] ->
        let p = as_pair "rplaca" v in
        p.car <- x;
        v
      | _ -> assert false);
  defprim "rplacd" 2 (fun _ args ->
      match args with
      | [ v; x ] ->
        let p = as_pair "rplacd" v in
        p.cdr <- x;
        v
      | _ -> assert false);
  (* predicates *)
  defprim "atom" 1 (fun _ args -> bool_v (Value.is_atom (List.hd args)));
  defprim "null" 1 (fun _ args -> bool_v (List.hd args = Value.Nil));
  defprim "not" 1 (fun _ args -> bool_v (not (Value.truthy (List.hd args))));
  defprim "eq" 2 (fun _ args ->
      match args with [ a; b ] -> bool_v (Value.eq a b) | _ -> assert false);
  defprim "equal" 2 (fun _ args ->
      match args with [ a; b ] -> bool_v (Value.equal a b) | _ -> assert false);
  defprim "greaterp" 2 (fun _ args ->
      match args with
      | [ a; b ] -> bool_v (as_int "greaterp" a > as_int "greaterp" b)
      | _ -> assert false);
  defprim "lessp" 2 (fun _ args ->
      match args with
      | [ a; b ] -> bool_v (as_int "lessp" a < as_int "lessp" b)
      | _ -> assert false);
  defprim "zerop" 1 (fun _ args -> bool_v (as_int "zerop" (List.hd args) = 0));
  defprim "numberp" 1 (fun _ args ->
      bool_v (match List.hd args with Value.Int _ -> true | _ -> false));
  defprim "symbolp" 1 (fun _ args ->
      bool_v (match List.hd args with Value.Sym _ | Value.T | Value.Nil -> true | _ -> false));
  (* arithmetic; the classical names plus operator aliases *)
  let arith name fn =
    defprim name 2 (fun _ args ->
        match args with
        | [ a; b ] -> Value.Int (fn (as_int name a) (as_int name b))
        | _ -> assert false)
  in
  arith "plus" ( + );
  arith "+" ( + );
  arith "difference" ( - );
  arith "-" ( - );
  arith "times" ( * );
  arith "*" ( * );
  arith "quotient" (fun a b -> if b = 0 then fail "quotient: division by zero" else a / b);
  arith "/" (fun a b -> if b = 0 then fail "/: division by zero" else a / b);
  arith "remainder" (fun a b -> if b = 0 then fail "remainder: division by zero" else a mod b);
  arith "min" min;
  arith "max" max;
  defprim "add1" 1 (fun _ args -> Value.Int (as_int "add1" (List.hd args) + 1));
  defprim "sub1" 1 (fun _ args -> Value.Int (as_int "sub1" (List.hd args) - 1));
  defprim "=" 2 (fun _ args ->
      match args with
      | [ a; b ] -> bool_v (as_int "=" a = as_int "=" b)
      | _ -> assert false);
  (* i/o *)
  defprim "read" 0 (fun t _ ->
      match Queue.take_opt t.input with
      | Some d -> Value.of_datum d
      | None -> Value.Nil);
  defprim "write" 1 (fun t args ->
      let v = List.hd args in
      t.output_rev <- Value.to_datum v :: t.output_rev;
      v);
  defprim "print" 1 (fun t args ->
      let v = List.hd args in
      t.output_rev <- Value.to_datum v :: t.output_rev;
      v);
  defprim "gensym" 0
    (let counter = ref 0 in
     fun _ _ ->
       incr counter;
       Value.Sym (Printf.sprintf "gs%d" !counter))

let traced = [ "car"; "cdr"; "cons"; "rplaca"; "rplacd" ]

let apply_prim t name args =
  (match Hashtbl.find_opt prim_arity name with
   | Some arity when arity <> List.length args ->
     fail "%s: expected %d arguments, got %d" name arity (List.length args)
   | Some _ -> ()
   | None -> fail "unknown primitive %s" name);
  let fn = Hashtbl.find prims name in
  let result = fn t args in
  if List.mem name traced then t.hooks.on_prim name args result;
  result

(* ---- evaluation ---- *)

let rec value_to_list = function
  | Value.Nil -> []
  | Value.Pair { car; cdr } -> car :: value_to_list cdr
  | v -> fail "expected a proper list, got %s" (Value.to_string v)

let params_of = function
  | Value.Nil -> []
  | v ->
    List.map
      (function
        | Value.Sym s -> s
        | v -> fail "lambda parameter must be a symbol, got %s" (Value.to_string v))
      (value_to_list v)

let rec eval t (v : Value.t) : Value.t =
  t.steps <- t.steps + 1;
  if t.steps > t.max_steps then fail "evaluation step limit exceeded";
  match v with
  | Value.Nil | Value.T | Value.Int _ | Value.Str _ | Value.Subr _ | Value.Lambda _
  | Value.Funarg _ -> v
  | Value.Sym s ->
    (match Env.lookup_opt t.env s with
     | Some v -> v
     | None -> fail "unbound variable %s" s)
  | Value.Pair { car = head; cdr = rest } ->
    (match head with
     | Value.Sym s -> eval_form t s rest
     | Value.Pair { car = Value.Sym "lambda"; cdr = lam } ->
       (* ((lambda (params) body...) args...) *)
       let lambda = parse_lambda lam in
       let args = List.map (eval t) (value_to_list rest) in
       apply_lambda t "#lambda" lambda args
     | _ -> fail "cannot apply %s" (Value.to_string head))

and parse_lambda lam =
  match value_to_list lam with
  | params :: body when body <> [] -> { Value.params = params_of params; body }
  | _ -> fail "malformed lambda"

and eval_form t s rest =
  match s with
  | "quote" ->
    (match value_to_list rest with
     | [ v ] -> v
     | _ -> fail "quote: expected one argument")
  | "cond" -> eval_cond t (value_to_list rest)
  | "if" ->
    (match value_to_list rest with
     | [ c; th ] -> if Value.truthy (eval t c) then eval t th else Value.Nil
     | [ c; th; el ] -> if Value.truthy (eval t c) then eval t th else eval t el
     | _ -> fail "if: expected 2 or 3 arguments")
  | "and" ->
    let rec go = function
      | [] -> Value.T
      | [ last ] -> eval t last
      | x :: more -> if Value.truthy (eval t x) then go more else Value.Nil
    in
    go (value_to_list rest)
  | "or" ->
    let rec go = function
      | [] -> Value.Nil
      | x :: more ->
        let v = eval t x in
        if Value.truthy v then v else go more
    in
    go (value_to_list rest)
  | "progn" -> eval_seq t (value_to_list rest)
  | "setq" ->
    (match value_to_list rest with
     | [ Value.Sym name; expr ] ->
       let v = eval t expr in
       Env.set t.env name v;
       v
     | _ -> fail "setq: expected (setq name expr)")
  | "let" ->
    (match value_to_list rest with
     | bindings :: body ->
       let parsed =
         List.map
           (fun b ->
              match value_to_list b with
              | [ Value.Sym name; expr ] -> (name, eval t expr)
              | [ Value.Sym name ] -> (name, Value.Nil)
              | _ -> fail "let: malformed binding")
           (value_to_list bindings)
       in
       Env.enter_frame t.env;
       List.iter (fun (name, v) -> Env.bind t.env name v) parsed;
       Fun.protect
         ~finally:(fun () -> Env.exit_frame t.env)
         (fun () -> eval_seq t body)
     | [] -> fail "let: missing bindings")
  | "while" ->
    (match value_to_list rest with
     | test :: body ->
       while Value.truthy (eval t test) do
         ignore (eval_seq t body)
       done;
       Value.Nil
     | [] -> fail "while: missing test")
  | "prog" -> eval_prog t (value_to_list rest)
  | "go" ->
    (match value_to_list rest with
     | [ Value.Sym label ] -> raise (Go label)
     | _ -> fail "go: expected a label")
  | "return" ->
    (match value_to_list rest with
     | [ expr ] -> raise (Return_from_prog (eval t expr))
     | [] -> raise (Return_from_prog Value.Nil)
     | _ -> fail "return: expected at most one value")
  | "def" ->
    (match value_to_list rest with
     | [ Value.Sym name; lam ] ->
       (match lam with
        | Value.Pair { car = Value.Sym "lambda"; cdr = body } ->
          Hashtbl.replace t.fns name (parse_lambda body);
          Value.Sym name
        | _ -> fail "def: expected (def name (lambda ...))")
     | _ -> fail "def: expected (def name (lambda ...))")
  | "defun" ->
    (* (defun name (params) body...) sugar *)
    (match value_to_list rest with
     | Value.Sym name :: params :: body when body <> [] ->
       Hashtbl.replace t.fns name { Value.params = params_of params; body };
       Value.Sym name
     | _ -> fail "defun: expected (defun name (params) body...)")
  | "lambda" -> Value.Lambda (parse_lambda rest)
  | "function" ->
    (* (function (lambda ...)) or (function name): capture the current
       referencing context with the function — a funarg (§2.2.1) *)
    (match value_to_list rest with
     | [ Value.Pair { car = Value.Sym "lambda"; cdr = lam } ] ->
       make_funarg t (parse_lambda lam)
     | [ Value.Sym name ] ->
       (match Hashtbl.find_opt t.fns name with
        | Some lambda -> make_funarg t lambda
        | None -> fail "function: %s is not defined" name)
     | _ -> fail "function: expected a lambda or a function name")
  | "funcall" ->
    (match value_to_list rest with
     | fexpr :: args ->
       let f = eval t fexpr in
       let args = List.map (eval t) args in
       apply_value t f args
     | [] -> fail "funcall: missing function")
  | _ -> eval_call t s rest

and make_funarg t lambda =
  let k = t.next_funarg in
  t.next_funarg <- k + 1;
  Hashtbl.replace t.funargs k (lambda, Env.capture t.env);
  Value.Funarg k

and apply_value t f args =
  match f with
  | Value.Lambda lambda -> apply_lambda t "#lambda" lambda args
  | Value.Funarg k ->
    (match Hashtbl.find_opt t.funargs k with
     | Some (lambda, snapshot) ->
       (* evaluate in the referencing context captured at creation *)
       Env.with_snapshot t.env snapshot (fun () ->
           apply_lambda t "#funarg" lambda args)
     | None -> fail "dangling funarg")
  | Value.Subr prim -> apply_prim t prim args
  | Value.Sym name ->
    (match Hashtbl.find_opt t.fns name with
     | Some lambda -> apply_lambda t name lambda args
     | None -> fail "funcall: undefined function %s" name)
  | v -> fail "cannot apply %s" (Value.to_string v)

and eval_cond t legs =
  match legs with
  | [] -> Value.Nil
  | leg :: more ->
    (match value_to_list leg with
     | [] -> fail "cond: empty leg"
     | test :: body ->
       let v = eval t test in
       if Value.truthy v then if body = [] then v else eval_seq t body
       else eval_cond t more)

and eval_seq t = function
  | [] -> Value.Nil
  | [ last ] -> eval t last
  | x :: more ->
    ignore (eval t x);
    eval_seq t more

and eval_prog t forms =
  match forms with
  | [] -> fail "prog: missing locals"
  | locals :: body ->
    let locals = params_of locals in
    let body = Array.of_list body in
    let labels = Hashtbl.create 8 in
    Array.iteri
      (fun i form -> match form with Value.Sym l -> Hashtbl.replace labels l i | _ -> ())
      body;
    Env.enter_frame t.env;
    List.iter (fun name -> Env.bind t.env name Value.Nil) locals;
    Fun.protect
      ~finally:(fun () -> Env.exit_frame t.env)
      (fun () ->
         let result = ref Value.Nil in
         (try
            let i = ref 0 in
            while !i < Array.length body do
              (match body.(!i) with
               | Value.Sym _ -> ()  (* label *)
               | form ->
                 (try ignore (eval t form)
                  with Go label ->
                    (match Hashtbl.find_opt labels label with
                     | Some target -> i := target - 1
                     | None -> raise (Go label))));
              incr i
            done
          with Return_from_prog v -> result := v);
         !result)

and eval_call t name rest =
  let args = List.map (eval t) (value_to_list rest) in
  match Hashtbl.find_opt t.fns name with
  | Some lambda -> apply_lambda t name lambda args
  | None ->
    if Hashtbl.mem prims name then apply_prim t name args
    else begin
      (* A variable bound to a functional value. *)
      match Env.lookup_opt t.env name with
      | Some (Value.Lambda _ as f) | Some (Value.Funarg _ as f)
      | Some (Value.Subr _ as f) ->
        apply_value t f args
      | _ -> fail "undefined function %s" name
    end

and apply_lambda t name lambda args =
  if List.length lambda.Value.params <> List.length args then
    fail "%s: expected %d arguments, got %d" name (List.length lambda.Value.params)
      (List.length args);
  t.hooks.on_call name (List.length args);
  Env.enter_frame t.env;
  List.iter2 (fun p a -> Env.bind t.env p a) lambda.Value.params args;
  Fun.protect
    ~finally:(fun () ->
        Env.exit_frame t.env;
        t.hooks.on_return name)
    (fun () -> eval_seq t lambda.Value.body)

let eval_datum t d = eval t (Value.of_datum d)

let run_program t source =
  List.fold_left (fun _ d -> eval_datum t d) Value.Nil (Sexp.parse_many source)
