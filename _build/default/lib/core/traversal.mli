(** Ordered-traversal analysis (§5.3.1).

    Walking a list's binary tree in pre-, in- or post-order touches every
    internal node exactly three times and every leaf once; each internal
    node costs exactly one split (the first touch) and each later touch is
    an LPT hit.  For a list with n atoms and p internal left parentheses
    this gives n+p misses and 3n+3p+1 hits — a guaranteed hit rate
    approaching 75%, independent of traversal order.

    This module {e simulates} such traversals against a real {!Lpt} and
    checks the analytic claim. *)

type result = {
  hits : int;
  misses : int;
  hit_rate : float;
}

(** [simulate ?table_size ~order d] drives a full ordered traversal of
    list [d] through an LPT and reports the observed hit/miss counts.
    The table must be large enough to hold the whole structure
    ([table_size] defaults to comfortably above that); pseudo overflow
    would merge leaves back and change the counts. *)
val simulate : ?table_size:int -> order:Sexp.Tree.order -> Sexp.Datum.t -> result

(** The analytic prediction [(misses, hits)] = (n+p, 3n+3p+1). *)
val predicted : Sexp.Datum.t -> int * int
