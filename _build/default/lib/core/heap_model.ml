type t = {
  rng : Util.Rng.t;
  mutable next_addr : int;
  used : (int, unit) Hashtbl.t;  (* head cells already holding an object *)
  mutable reads : int;
  mutable splits : int;
  mutable merges : int;
  mutable reclaims : int;
  mutable cells_reclaimed : int;
}

let create ~seed =
  { rng = Util.Rng.create ~seed; next_addr = 0; used = Hashtbl.create 1024;
    reads = 0; splits = 0; merges = 0; reclaims = 0; cells_reclaimed = 0 }

let bump t size =
  let addr = t.next_addr in
  t.next_addr <- t.next_addr + max 1 size;
  Hashtbl.replace t.used addr ();
  addr

(* Place a part near [near]: distinct objects occupy distinct head cells,
   so the candidate slides forward past occupied ones. *)
let place t ~near =
  let rec slide a = if Hashtbl.mem t.used a then slide (a + 1) else a in
  let addr = slide near in
  Hashtbl.replace t.used addr ();
  addr

let read_in t ~size =
  t.reads <- t.reads + 1;
  bump t size

let assign t ~size = bump t size

(* Clark's distance shapes: cdr pointers are overwhelmingly at distance 1
   (lists stay linearised); car pointers reach further, with a short
   geometric tail. *)
let cdr_distance t =
  if Util.Rng.bool t.rng ~p:0.8 then 1
  else begin
    let rec tail d = if d > 40 || Util.Rng.bool t.rng ~p:0.35 then d else tail (d + 1) in
    tail 2
  end

let car_distance t =
  let rec tail d = if d > 60 || Util.Rng.bool t.rng ~p:0.25 then d else tail (d + 1) in
  tail 2

let split t ~addr =
  t.splits <- t.splits + 1;
  let cdr = place t ~near:(addr + cdr_distance t) in
  let car = place t ~near:(addr + car_distance t) in
  (car, cdr)

let merge t a b =
  t.merges <- t.merges + 1;
  (* The merged object is rooted at a fresh cell pointing at both parts. *)
  ignore b;
  ignore a;
  bump t 1

let reclaim t ~addr ~size =
  ignore addr;
  t.reclaims <- t.reclaims + 1;
  t.cells_reclaimed <- t.cells_reclaimed + max 0 size

type counters = {
  reads : int;
  splits : int;
  merges : int;
  reclaims : int;
  cells_reclaimed : int;
}

let counters (t : t) =
  { reads = t.reads; splits = t.splits; merges = t.merges; reclaims = t.reclaims;
    cells_reclaimed = t.cells_reclaimed }
