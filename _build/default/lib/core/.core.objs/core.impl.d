lib/core/core.ml: Heap_model Lp Lpt Simulator Traversal
