lib/core/heap_model.ml: Hashtbl Util
