lib/core/lpt.ml: Array Bytes Heap_model Util
