lib/core/heap_model.mli:
