lib/core/traversal.mli: Sexp
