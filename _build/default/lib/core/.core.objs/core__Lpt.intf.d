lib/core/lpt.mli: Heap_model
