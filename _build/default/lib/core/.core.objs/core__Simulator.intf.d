lib/core/simulator.mli: Heap_model Lpt Trace
