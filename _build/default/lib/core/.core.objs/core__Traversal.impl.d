lib/core/traversal.ml: Heap_model Lpt Option Sexp
