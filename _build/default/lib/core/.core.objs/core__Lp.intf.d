lib/core/lp.mli: Lpt Sexp
