lib/core/lp.ml: Hashtbl Heap Heap_model List Lpt Option Printf Sexp
