lib/core/simulator.ml: Array Cache Heap_model List Lpt Option Trace Util
