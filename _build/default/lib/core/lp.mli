(** The List Processor, concretely (§4.3.2–§4.3.3): an {!Lpt} driving a
    real array-backed cell heap.

    Where {!Simulator} models only the counting behaviour of the LP,
    this module is the functional article: [read_in] loads an
    s-expression into heap cells, a missed [car]/[cdr] performs a real
    split (the heap controller returns the two part words and frees the
    parent cell, §4.3.3.2), [cons] builds endo-structure that exists
    only in the table, and [externalize] writes a virtualised list back
    out as an s-expression.  The EP side of the protocol is the
    [retain]/[release] pair — the reference-count traffic of every
    binding.

    The machine emulator and the examples use it as the LP a real SMALL
    would expose over the EP–LP bus. *)

type t

(** [create ()] builds an LP with an [lpt_size]-entry table (default
    1024) over a [heap_cells]-cell store (default 65536). *)
val create : ?lpt_size:int -> ?heap_cells:int -> unit -> t

(** What the LP hands the EP for the part of an object: another object
    identifier, or an immediate atomic value (with its type tag). *)
type part =
  | Obj of int
  | Val of Sexp.Datum.t

(** [read_in t d] performs a readlist: [d] is loaded into heap cells and
    virtualised behind a fresh identifier (atoms are rejected — the EP
    keeps those itself).  The returned identifier carries one reference
    (the EP's binding); [release] it when done.
    @raise Invalid_argument if [d] is an atom. *)
val read_in : t -> Sexp.Datum.t -> int

(** [car t id] / [cdr t id]: satisfied from the table when cached,
    otherwise the heap object is split. *)
val car : t -> int -> part

val cdr : t -> int -> part

(** [cons t a d]: pure endo-structure, no heap activity.  The result
    carries one reference. *)
val cons : t -> part -> part -> int

(** [rplaca t id v] / [rplacd t id v] destructively replace a part. *)
val rplaca : t -> int -> part -> unit

val rplacd : t -> int -> part -> unit

(** EP reference management for identifiers held in bindings. *)
val retain : t -> int -> unit

val release : t -> int -> unit

(** [externalize t id] reconstructs the s-expression behind [id]
    (writelist).  Cyclic structure is cut with the symbol [<cycle>]. *)
val externalize : t -> int -> Sexp.Datum.t

val is_live : t -> int -> bool

(** Heap cells currently allocated. *)
val heap_live : t -> int

val lpt_counters : t -> Lpt.counters
