(** SMALL — the Structured Memory Access of Lisp Lists architecture
    (Chapters 4 and 5): the List Processor Table with reference-counting
    space management, lazy child decrement, compression policies and
    overflow recovery; the heap-controller model; the trace-driven
    EP/LP simulator; and the ordered-traversal analysis. *)

module Lpt = Lpt
module Lp = Lp
module Heap_model = Heap_model
module Simulator = Simulator
module Traversal = Traversal
