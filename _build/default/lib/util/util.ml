(** Shared utilities: a deterministic splitmix64 RNG (every stochastic
    component takes an explicit generator for reproducibility), empirical
    distributions, and text renderers for the tables and figure series. *)

module Rng = Rng
module Dist = Dist
module Series = Series
