type t = {
  label : string;
  points : (float * float) list;
}

let make ~label points = { label; points }

let fmt_num x =
  if Float.is_integer x && Float.abs x < 1e9 then Printf.sprintf "%d" (int_of_float x)
  else Printf.sprintf "%.3f" x

let print_rows ~title ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m r -> max m (String.length (Option.value ~default:"" (List.nth_opt r c))))
      0 all
  in
  let widths = List.init cols width in
  let line r =
    String.concat "  "
      (List.mapi
         (fun c w ->
            let cell = Option.value ~default:"" (List.nth_opt r c) in
            cell ^ String.make (w - String.length cell) ' ')
         widths)
  in
  Printf.printf "\n== %s ==\n" title;
  print_endline (line header);
  print_endline (String.make (String.length (line header)) '-');
  List.iter (fun r -> print_endline (line r)) rows

let print_table ~title ~x_label ~y_label series =
  let xs =
    List.sort_uniq Float.compare
      (List.concat_map (fun s -> List.map fst s.points) series)
  in
  let header = x_label :: List.map (fun s -> s.label) series in
  let rows =
    List.map
      (fun x ->
         fmt_num x
         :: List.map
              (fun s ->
                 match List.assoc_opt x s.points with
                 | Some y -> fmt_num y
                 | None -> "")
              series)
      xs
  in
  print_rows ~title:(Printf.sprintf "%s  [y: %s]" title y_label) ~header rows

let print_ascii ~title ?(width = 64) ?(height = 16) series =
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then Printf.printf "\n== %s == (no data)\n" title
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let x0 = List.fold_left Float.min infinity xs
    and x1 = List.fold_left Float.max neg_infinity xs
    and y0 = List.fold_left Float.min infinity ys
    and y1 = List.fold_left Float.max neg_infinity ys in
    let xr = if x1 > x0 then x1 -. x0 else 1. in
    let yr = if y1 > y0 then y1 -. y0 else 1. in
    let canvas = Array.make_matrix height width ' ' in
    let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |] in
    List.iteri
      (fun i s ->
         let g = glyphs.(i mod Array.length glyphs) in
         List.iter
           (fun (x, y) ->
              let cx = int_of_float ((x -. x0) /. xr *. float_of_int (width - 1)) in
              let cy = int_of_float ((y -. y0) /. yr *. float_of_int (height - 1)) in
              canvas.(height - 1 - cy).(cx) <- g)
           s.points)
      series;
    Printf.printf "\n== %s ==\n" title;
    Array.iter (fun row -> Printf.printf "|%s|\n" (String.init width (Array.get row))) canvas;
    Printf.printf "x: %s .. %s   y: %s .. %s\n" (fmt_num x0) (fmt_num x1) (fmt_num y0)
      (fmt_num y1);
    List.iteri
      (fun i s -> Printf.printf "  %c = %s\n" glyphs.(i mod Array.length glyphs) s.label)
      series
  end
