lib/util/series.ml: Array Float List Option Printf String
