lib/util/series.mli:
