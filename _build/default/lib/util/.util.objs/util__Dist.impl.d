lib/util/dist.ml: Array Float List
