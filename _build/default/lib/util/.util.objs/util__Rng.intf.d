lib/util/rng.mli:
