lib/util/util.ml: Dist Rng Series
