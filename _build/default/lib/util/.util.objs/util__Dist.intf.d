lib/util/dist.mli:
