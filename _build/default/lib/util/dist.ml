type t = {
  mutable values : (float * int) list;  (* observation, weight; unsorted *)
  mutable count : int;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { values = []; count = 0; total = 0.; min_v = infinity; max_v = neg_infinity }

let add ?(weight = 1) t x =
  t.values <- (x, weight) :: t.values;
  t.count <- t.count + weight;
  t.total <- t.total +. (x *. float_of_int weight);
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.count
let total t = t.total
let mean t = if t.count = 0 then 0. else t.total /. float_of_int t.count
let min_value t = t.min_v
let max_value t = t.max_v

let sorted t =
  List.sort (fun (a, _) (b, _) -> Float.compare a b) t.values

let percentile t q =
  if t.count = 0 then invalid_arg "Dist.percentile: empty";
  let q = Float.max 0. (Float.min 1. q) in
  let target = q *. float_of_int (t.count - 1) in
  let lo = int_of_float (Float.floor target) in
  let frac = target -. Float.of_int lo in
  (* Walk the weighted sorted list to positions lo and lo+1. *)
  let rec at idx pos = function
    | [] -> invalid_arg "Dist.percentile: out of range"
    | (v, w) :: rest -> if idx < pos + w then v else at idx (pos + w) rest
  in
  let s = sorted t in
  let a = at lo 0 s in
  let b = at (min (t.count - 1) (lo + 1)) 0 s in
  a +. (frac *. (b -. a))

let histogram t ~buckets =
  if t.count = 0 || buckets <= 0 then []
  else begin
    let lo = t.min_v and hi = t.max_v in
    let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1. in
    let counts = Array.make buckets 0 in
    List.iter
      (fun (v, w) ->
         let b = int_of_float ((v -. lo) /. width) in
         let b = max 0 (min (buckets - 1) b) in
         counts.(b) <- counts.(b) + w)
      t.values;
    List.init buckets (fun i -> (lo +. (float_of_int i *. width), counts.(i)))
  end

let cumulative t =
  let s = sorted t in
  let n = float_of_int t.count in
  let rec go acc seen = function
    | [] -> List.rev acc
    | (v, w) :: rest ->
      let seen = seen + w in
      (match rest with
       | (v', _) :: _ when v' = v ->
         (* merge equal values *)
         go acc seen rest
       | _ -> go ((v, float_of_int seen /. n) :: acc) seen rest)
  in
  go [] 0 s

let of_list xs =
  let t = create () in
  List.iter (fun x -> add t x) xs;
  t

let values t =
  List.concat_map (fun (v, w) -> List.init w (fun _ -> v)) (sorted t)
