(** Empirical distributions: accumulation, summary statistics, histograms
    and cumulative curves — the machinery behind the thesis's figures
    (distributions of n, p, list-set sizes, lifetimes, stack distances). *)

type t

val create : unit -> t

(** [add t x] records one observation (an [add ~weight] variant records
    several). *)
val add : ?weight:int -> t -> float -> unit

val count : t -> int
val total : t -> float
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

(** [percentile t q] for [q] in [0, 1], by linear interpolation over the
    sorted observations.  @raise Invalid_argument if empty. *)
val percentile : t -> float -> float

(** [histogram t ~buckets] returns [(lower_bound, count)] rows of an
    equal-width histogram over the observed range. *)
val histogram : t -> buckets:int -> (float * int) list

(** [cumulative t] returns the empirical CDF as [(value, fraction <= value)]
    points, ascending, deduplicated. *)
val cumulative : t -> (float * float) list

val of_list : float list -> t
val values : t -> float list
