(* Tests for the Baker-style semispace copying collector: structure
   preservation across flips, forwarding of shared structure, root
   updating, incremental pause bounds, and exhaustion. *)

module W = Heap.Word
module C = Heap.Copying

(* Build the list (1 2 ... k) and return its head word. *)
let build_chain gc k =
  let rec go i tail =
    if i = 0 then tail else go (i - 1) (W.Ptr (C.alloc gc ~car:(W.Int i) ~cdr:tail))
  in
  go k W.Nil

let read_chain gc w =
  let rec go (w : W.t) acc =
    match w with
    | Nil -> List.rev acc
    | Ptr a ->
      (match C.car gc a with
       | W.Int n -> go (C.cdr gc a) (n :: acc)
       | _ -> Alcotest.fail "expected int car")
    | _ -> Alcotest.fail "expected pointer or nil"
  in
  go w []

let test_alloc_read () =
  let gc = C.create ~semispace:64 ~increment:0 in
  let w = build_chain gc 5 in
  let r = C.add_root gc w in
  Alcotest.(check (list int)) "chain intact" [ 1; 2; 3; 4; 5 ]
    (read_chain gc (C.root_value gc r))

let test_flip_preserves_roots () =
  let gc = C.create ~semispace:64 ~increment:0 in
  let w = build_chain gc 8 in
  let r = C.add_root gc w in
  ignore (build_chain gc 10);  (* garbage *)
  C.flip gc;
  Alcotest.(check (list int)) "rooted chain survives the flip"
    [ 1; 2; 3; 4; 5; 6; 7; 8 ] (read_chain gc (C.root_value gc r));
  Alcotest.(check int) "only live cells copied" 8 (C.allocated gc)

let test_garbage_not_copied () =
  let gc = C.create ~semispace:32 ~increment:0 in
  ignore (build_chain gc 10);
  C.flip gc;
  Alcotest.(check int) "all garbage collected" 0 (C.allocated gc);
  Alcotest.(check int) "nothing copied" 0 (C.counters gc).C.copied

let test_shared_structure_forwarded_once () =
  let gc = C.create ~semispace:64 ~increment:0 in
  let shared = C.alloc gc ~car:(W.Int 42) ~cdr:W.Nil in
  let a = C.alloc gc ~car:(W.Ptr shared) ~cdr:W.Nil in
  let b = C.alloc gc ~car:(W.Ptr shared) ~cdr:W.Nil in
  let ra = C.add_root gc (W.Ptr a) and rb = C.add_root gc (W.Ptr b) in
  C.flip gc;
  Alcotest.(check int) "three cells live (sharing preserved)" 3 (C.allocated gc);
  (* both parents must point at the same copy *)
  let target root =
    match C.root_value gc root with
    | W.Ptr p -> C.car gc p
    | _ -> Alcotest.fail "expected pointer root"
  in
  Alcotest.(check bool) "one copy, shared" true (target ra = target rb)

let test_cycles_survive () =
  let gc = C.create ~semispace:32 ~increment:0 in
  let a = C.alloc gc ~car:(W.Int 1) ~cdr:W.Nil in
  let b = C.alloc gc ~car:(W.Int 2) ~cdr:(W.Ptr a) in
  C.set_cdr gc a (W.Ptr b);
  let r = C.add_root gc (W.Ptr a) in
  C.flip gc;
  Alcotest.(check int) "cycle copied once" 2 (C.allocated gc);
  (match C.root_value gc r with
   | W.Ptr a' ->
     (match C.cdr gc a' with
      | W.Ptr b' ->
        Alcotest.(check bool) "cycle closed" true (C.cdr gc b' = W.Ptr a')
      | _ -> Alcotest.fail "broken cycle")
   | _ -> Alcotest.fail "expected pointer")

let test_automatic_flip () =
  (* keep a small live set while allocating far more than a semispace *)
  let gc = C.create ~semispace:16 ~increment:0 in
  let r = C.add_root gc W.Nil in
  for i = 1 to 100 do
    let a = C.alloc gc ~car:(W.Int i) ~cdr:W.Nil in
    C.set_root gc r (W.Ptr a)
  done;
  Alcotest.(check bool) "flips happened" true ((C.counters gc).C.flips > 3);
  (match C.root_value gc r with
   | W.Ptr a -> Alcotest.(check bool) "latest survives" true (C.car gc a = W.Int 100)
   | _ -> Alcotest.fail "expected pointer")

let test_incremental_bounded_pause () =
  let run increment =
    let gc = C.create ~semispace:512 ~increment in
    let r = C.add_root gc W.Nil in
    (* a sizable live list, then churn to force collections *)
    C.set_root gc r (build_chain gc 200);
    for i = 1 to 2000 do
      ignore (C.alloc gc ~car:(W.Int i) ~cdr:W.Nil)
    done;
    C.counters gc
  in
  let stw = run 0 and inc = run 4 in
  Alcotest.(check bool) "both modes collected" true (stw.C.flips > 0 && inc.C.flips > 0);
  Alcotest.(check bool) "stop-the-world pause covers the live set" true
    (stw.C.max_pause >= 200);
  Alcotest.(check bool) "incremental pause is bounded" true (inc.C.max_pause <= 16)

let test_read_barrier () =
  (* in incremental mode, reading through a not-yet-scavenged cell must
     still yield tospace pointers *)
  let gc = C.create ~semispace:256 ~increment:1 in
  let w = build_chain gc 50 in
  let r = C.add_root gc w in
  C.flip gc;  (* incremental: only roots evacuated so far *)
  Alcotest.(check (list int)) "barrier chases forwarding"
    (List.init 50 (fun i -> i + 1))
    (read_chain gc (C.root_value gc r))

let test_out_of_memory () =
  let gc = C.create ~semispace:8 ~increment:0 in
  let r = C.add_root gc W.Nil in
  Alcotest.check_raises "live set exceeds a semispace" C.Out_of_memory (fun () ->
      for _ = 1 to 50 do
        C.set_root gc r (W.Ptr (C.alloc gc ~car:W.Nil ~cdr:(C.root_value gc r)))
      done)

(* Property: random rooted structures survive arbitrary collection. *)
let prop_structure_survives =
  QCheck.Test.make ~name:"rooted structure identical across flips" ~count:100
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 40) (0 -- 99)) (1 -- 3))
    (fun (xs, increment) ->
      let gc = C.create ~semispace:256 ~increment in
      let rec build = function
        | [] -> W.Nil
        | x :: rest -> W.Ptr (C.alloc gc ~car:(W.Int x) ~cdr:(build rest))
      in
      let r = C.add_root gc (build xs) in
      (* churn garbage to force several collections *)
      for i = 1 to 600 do
        ignore (C.alloc gc ~car:(W.Int i) ~cdr:W.Nil)
      done;
      read_chain gc (C.root_value gc r) = xs)

let () =
  Alcotest.run "copying"
    [ ("copying",
       [ Alcotest.test_case "alloc/read" `Quick test_alloc_read;
         Alcotest.test_case "flip preserves roots" `Quick test_flip_preserves_roots;
         Alcotest.test_case "garbage dropped" `Quick test_garbage_not_copied;
         Alcotest.test_case "sharing forwarded once" `Quick test_shared_structure_forwarded_once;
         Alcotest.test_case "cycles survive" `Quick test_cycles_survive;
         Alcotest.test_case "automatic flip" `Quick test_automatic_flip;
         Alcotest.test_case "incremental pause bound" `Quick test_incremental_bounded_pause;
         Alcotest.test_case "read barrier" `Quick test_read_barrier;
         Alcotest.test_case "out of memory" `Quick test_out_of_memory ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_structure_survives ]) ]
