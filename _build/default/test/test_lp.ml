(* Tests for the concrete List Processor: virtualised lists over a real
   cell heap — readlist, splits consuming heap cells, cons as pure
   endo-structure, rplac, write-out, reference-driven reclamation, and
   compression writing endo-structure back to the heap. *)

module D = Sexp.Datum
module Lp = Core.Lp

let d = Alcotest.testable Sexp.pp D.equal

let test_read_externalize () =
  let lp = Lp.create () in
  let x = Sexp.parse "(a (b c) 42)" in
  let id = Lp.read_in lp x in
  Alcotest.check d "writelist returns what readlist took" x (Lp.externalize lp id);
  Alcotest.(check bool) "heap holds the cells" true (Lp.heap_live lp > 0)

let test_rejects_atoms () =
  let lp = Lp.create () in
  Alcotest.(check bool) "atom rejected" true
    (match Lp.read_in lp (D.Int 5) with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_car_cdr () =
  let lp = Lp.create () in
  let id = Lp.read_in lp (Sexp.parse "(a (b) c)") in
  (match Lp.car lp id with
   | Lp.Val v -> Alcotest.check d "car is the atom a" (D.sym "a") v
   | Obj _ -> Alcotest.fail "expected an immediate value");
  (match Lp.cdr lp id with
   | Lp.Obj tail ->
     Alcotest.check d "cdr externalizes" (Sexp.parse "((b) c)") (Lp.externalize lp tail);
     (match Lp.car lp tail with
      | Lp.Obj sub -> Alcotest.check d "nested list" (Sexp.parse "(b)") (Lp.externalize lp sub)
      | Val _ -> Alcotest.fail "expected an object")
   | Val _ -> Alcotest.fail "expected an object")

let test_split_frees_parent_cell () =
  let lp = Lp.create () in
  let id = Lp.read_in lp (Sexp.parse "(a b c)") in
  let before = Lp.heap_live lp in
  ignore (Lp.car lp id);  (* miss: splits, heap controller frees the cell *)
  Alcotest.(check int) "split consumed one cell" (before - 1) (Lp.heap_live lp);
  (* the object still externalizes correctly from its parts *)
  Alcotest.check d "structure preserved" (Sexp.parse "(a b c)") (Lp.externalize lp id)

let test_cons_no_heap () =
  let lp = Lp.create () in
  let a = Lp.read_in lp (Sexp.parse "(x)") in
  let before = Lp.heap_live lp in
  let z = Lp.cons lp (Lp.Val (D.int 1)) (Lp.Obj a) in
  Alcotest.(check int) "cons touched no heap cell" before (Lp.heap_live lp);
  Alcotest.check d "endo-structure externalizes" (Sexp.parse "(1 x)")
    (Lp.externalize lp z);
  (* cons parts are table hits *)
  (match Lp.car lp z with
   | Lp.Val v -> Alcotest.check d "atom half" (D.Int 1) v
   | Obj _ -> Alcotest.fail "expected value");
  (match Lp.cdr lp z with
   | Lp.Obj i -> Alcotest.(check int) "object half" a i
   | Val _ -> Alcotest.fail "expected object")

let test_rplac () =
  let lp = Lp.create () in
  let id = Lp.read_in lp (Sexp.parse "(a b)") in
  Lp.rplaca lp id (Lp.Val (D.int 9));
  Alcotest.check d "rplaca with atom" (Sexp.parse "(9 b)") (Lp.externalize lp id);
  let other = Lp.read_in lp (Sexp.parse "(z)") in
  Lp.rplacd lp id (Lp.Obj other);
  Alcotest.check d "rplacd with object" (Sexp.parse "(9 z)") (Lp.externalize lp id);
  (match Lp.car lp id with
   | Lp.Val v -> Alcotest.check d "atom field hits" (D.Int 9) v
   | Obj _ -> Alcotest.fail "expected value")

let test_release_reclaims_heap () =
  let lp = Lp.create () in
  let id = Lp.read_in lp (Sexp.parse "(a b c d e)") in
  Alcotest.(check int) "five cells" 5 (Lp.heap_live lp);
  Lp.release lp id;
  Alcotest.(check bool) "entry dead" false (Lp.is_live lp id);
  Alcotest.(check int) "heap reclaimed" 0 (Lp.heap_live lp)

let test_release_after_split_reclaims_parts () =
  let lp = Lp.create () in
  let id = Lp.read_in lp (Sexp.parse "(a b c d e)") in
  ignore (Lp.cdr lp id);  (* split: parts now in child entries *)
  Lp.release lp id;
  (* the children die via lazy decrement as their slots recycle: force
     recycling with fresh allocations *)
  for _ = 1 to 10 do
    let tmp = Lp.read_in lp (Sexp.parse "(t)") in
    Lp.release lp tmp
  done;
  Alcotest.(check int) "all cells eventually reclaimed" 0 (Lp.heap_live lp)

let test_compression_writes_back () =
  (* a tiny table forces compression; the merged object must still
     externalize correctly from the heap cell the merge wrote *)
  let lp = Lp.create ~lpt_size:6 () in
  let id = Lp.read_in lp (Sexp.parse "(a b c)") in
  ignore (Lp.car lp id);           (* 3 entries live *)
  let extra = Lp.read_in lp (Sexp.parse "(x y)") in
  ignore (Lp.car lp extra);        (* 6 live: table full *)
  (* next read triggers pseudo overflow; id's children are compressible *)
  let more = Lp.read_in lp (Sexp.parse "(q)") in
  let c = Lp.lpt_counters lp in
  Alcotest.(check bool) "compression happened" true (c.Core.Lpt.compressions >= 1);
  Alcotest.check d "compressed object reads back" (Sexp.parse "(a b c)")
    (Lp.externalize lp id);
  Alcotest.check d "unrelated objects unharmed" (Sexp.parse "(x y)")
    (Lp.externalize lp extra);
  Alcotest.check d "new object fine" (Sexp.parse "(q)") (Lp.externalize lp more)

let test_shared_tail_via_cons () =
  let lp = Lp.create () in
  let tail = Lp.read_in lp (Sexp.parse "(c d)") in
  let x = Lp.cons lp (Lp.Val (D.sym "a")) (Lp.Obj tail) in
  let y = Lp.cons lp (Lp.Val (D.sym "b")) (Lp.Obj tail) in
  Alcotest.check d "x sees tail" (Sexp.parse "(a c d)") (Lp.externalize lp x);
  Alcotest.check d "y sees tail" (Sexp.parse "(b c d)") (Lp.externalize lp y);
  (* mutating the shared tail is visible through both — real sharing *)
  Lp.rplaca lp tail (Lp.Val (D.sym "z"));
  Alcotest.check d "x sees mutation" (Sexp.parse "(a z d)") (Lp.externalize lp x);
  Alcotest.check d "y sees mutation" (Sexp.parse "(b z d)") (Lp.externalize lp y)

let test_cycle_externalize () =
  let lp = Lp.create () in
  let id = Lp.read_in lp (Sexp.parse "(a b)") in
  Lp.rplacd lp id (Lp.Obj id);
  match Lp.externalize lp id with
  | D.Cons (_, D.Sym "<cycle>") -> ()
  | other -> Alcotest.failf "unexpected %s" (Sexp.to_string other)

(* Property: an arbitrary interleaving of reads, cars/cdrs and conses
   externalizes to the value the plain datum semantics predict. *)
let gen_list =
  QCheck.Gen.(
    let atom = map (fun n -> D.Int n) (int_range 0 99) in
    let rec go depth =
      if depth = 0 then atom
      else
        frequency
          [ (3, atom);
            (2, int_range 1 4 >>= fun len -> map D.list (list_repeat len (go (depth - 1)))) ]
    in
    int_range 1 5 >>= fun len -> map D.list (list_repeat len (go 2)))

let prop_lp_matches_datum_semantics =
  QCheck.Test.make ~name:"LP car/cdr/cons agree with datum semantics" ~count:100
    (QCheck.make ~print:Sexp.to_string gen_list) (fun x ->
      let lp = Lp.create () in
      let id = Lp.read_in lp x in
      (* walk the spine: cdr chain externalizes to the datum's tails *)
      let rec walk part (expected : D.t) =
        match part, expected with
        | Lp.Val v, e -> D.equal v e
        | Lp.Obj i, e ->
          D.equal (Lp.externalize lp i) e
          && (match e with
              | D.Cons (a, rest) -> walk (Lp.car lp i) a && walk (Lp.cdr lp i) rest
              | _ -> true)
      in
      let spine_ok = walk (Lp.Obj id) x in
      (* cons rebuilds: (cons (car x) (cdr x)) externalizes like x *)
      let rebuilt = Lp.cons lp (Lp.car lp id) (Lp.cdr lp id) in
      spine_ok && D.equal x (Lp.externalize lp rebuilt))

let prop_lp_small_table_stress =
  (* under a tiny table, compression and lazy reclamation churn hard;
     structure must still externalize exactly *)
  QCheck.Test.make ~name:"LP correct under compression pressure" ~count:60
    (QCheck.make ~print:Sexp.to_string gen_list) (fun x ->
      let lp = Lp.create ~lpt_size:24 () in
      let id = Lp.read_in lp x in
      (* force traffic: walk the spine twice *)
      let rec walk part =
        match part with
        | Lp.Obj i -> walk (Lp.cdr lp i)
        | Lp.Val _ -> ()
      in
      (try
         walk (Lp.Obj id);
         walk (Lp.Obj id);
         (* churn unrelated objects to trigger pseudo overflows *)
         for k = 0 to 5 do
           let tmp = Lp.read_in lp (D.of_ints [ k; k + 1; k + 2 ]) in
           Lp.release lp tmp
         done;
         D.equal x (Lp.externalize lp id)
       with Core.Lpt.True_overflow -> true (* tiny tables may genuinely fill *)))

let () =
  Alcotest.run "lp"
    [ ("lp",
       [ Alcotest.test_case "read/externalize" `Quick test_read_externalize;
         Alcotest.test_case "rejects atoms" `Quick test_rejects_atoms;
         Alcotest.test_case "car/cdr" `Quick test_car_cdr;
         Alcotest.test_case "split frees the parent cell" `Quick test_split_frees_parent_cell;
         Alcotest.test_case "cons without heap" `Quick test_cons_no_heap;
         Alcotest.test_case "rplac" `Quick test_rplac;
         Alcotest.test_case "release reclaims heap" `Quick test_release_reclaims_heap;
         Alcotest.test_case "release after split" `Quick test_release_after_split_reclaims_parts;
         Alcotest.test_case "compression writes back" `Quick test_compression_writes_back;
         Alcotest.test_case "shared tails" `Quick test_shared_tail_via_cons;
         Alcotest.test_case "cycle cut" `Quick test_cycle_externalize ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_lp_matches_datum_semantics; prop_lp_small_table_stress ]) ]
