(* Tests for the multi-node SMALL cluster of §6.3: per-node LPTs, remote
   references with weights, cross-node access costs, cons spanning nodes,
   and reclamation across the machine. *)

module C = Multilisp.Cluster
module D = Sexp.Datum

let d = Alcotest.testable Sexp.pp D.equal

let test_local_access_is_free () =
  let t = C.create ~nodes:2 ~combining:false () in
  let h = C.read_in t ~node:0 (Sexp.parse "(a b c)") in
  (match C.car t h with
   | C.Imm v -> Alcotest.check d "car" (D.sym "a") v
   | Ref _ -> Alcotest.fail "expected an immediate");
  Alcotest.(check int) "no messages for local access" 0 (C.counters t).C.messages;
  Alcotest.(check int) "one local access" 1 (C.counters t).C.local_accesses

let test_remote_access_messages () =
  let t = C.create ~nodes:2 ~combining:false () in
  let h0 = C.read_in t ~node:0 (Sexp.parse "(a b c)") in
  let h1 = C.send t h0 ~to_node:1 in
  Alcotest.(check int) "sending a reference is message-free" 0
    (C.counters t).C.messages;
  (match C.cdr t h1 with
   | C.Ref tail ->
     Alcotest.(check int) "part handle held at the requester" 1 (C.holder tail);
     Alcotest.(check int) "object still owned by node 0" 0 (C.owner t tail);
     Alcotest.check d "remote structure readable" (Sexp.parse "(b c)")
       (C.externalize t tail)
   | Imm _ -> Alcotest.fail "expected a reference");
  let c = C.counters t in
  Alcotest.(check int) "one remote access" 1 c.C.remote_accesses;
  Alcotest.(check bool) "request/reply messages counted" true (c.C.messages >= 2)

let test_cross_node_cons () =
  let t = C.create ~nodes:3 ~combining:false () in
  let left = C.read_in t ~node:0 (Sexp.parse "(x y)") in
  let right = C.read_in t ~node:1 (Sexp.parse "(p q)") in
  (* build at node 2 from parts living on nodes 0 and 1 *)
  let r1 = C.send t left ~to_node:2 in
  let r2 = C.send t right ~to_node:2 in
  let z = C.cons t ~at:2 (C.Ref r1) (C.Ref r2) in
  Alcotest.(check int) "cons lives at node 2" 2 (C.owner t z);
  Alcotest.check d "structure spans three nodes" (Sexp.parse "((x y) p q)")
    (C.externalize t z)

let test_weight_accounting_and_death () =
  let t = C.create ~nodes:4 ~combining:false () in
  let h = C.read_in t ~node:0 (Sexp.parse "(a b)") in
  let copies = List.init 6 (fun i -> C.send t h ~to_node:(i mod 4)) in
  (* all references dropped: the object dies at its owner *)
  List.iter (fun c -> C.drop t c) copies;
  C.drop t h;
  C.flush t;
  let lpt0 = C.node_lpt t 0 in
  Alcotest.(check bool) "owner entry reclaimed" true (lpt0.Core.Lpt.frees >= 1)

let test_combining_reduces_messages () =
  let run combining =
    let t = C.create ~flush_at:16 ~nodes:2 ~combining () in
    let h = C.read_in t ~node:0 (Sexp.parse "(a)") in
    let copies = List.init 12 (fun _ -> C.send t h ~to_node:1) in
    List.iter (fun c -> C.drop t c) copies;
    C.flush t;
    (C.counters t).C.messages
  in
  Alcotest.(check int) "12 drop messages plain" 12 (run false);
  Alcotest.(check int) "1 combined message" 1 (run true)

let test_remote_walk () =
  (* node 1 walks a list owned by node 0: every step is a message pair,
     the Ch 6 motivation for locality-aware placement *)
  let t = C.create ~nodes:2 ~combining:false () in
  let h = C.read_in t ~node:0 (D.of_ints [ 1; 2; 3; 4 ]) in
  let remote = C.send t h ~to_node:1 in
  let rec walk part acc =
    match part with
    | C.Imm D.Nil -> List.rev acc
    | C.Ref r ->
      let hd = match C.car t r with C.Imm v -> v | Ref _ -> D.Nil in
      walk (C.cdr t r) (hd :: acc)
    | C.Imm _ -> List.rev acc
  in
  let items = walk (C.Ref remote) [] in
  Alcotest.(check (list d)) "walked remotely" [ D.Int 1; D.Int 2; D.Int 3; D.Int 4 ]
    items;
  let c = C.counters t in
  Alcotest.(check bool) "every step crossed the interconnect" true
    (c.C.remote_accesses >= 8);
  Alcotest.(check bool) "messages ~ 2 per access" true
    (c.C.messages >= 2 * c.C.remote_accesses)

let test_double_drop () =
  let t = C.create ~nodes:2 ~combining:false () in
  let h = C.read_in t ~node:0 (Sexp.parse "(a)") in
  C.drop t h;
  Alcotest.check_raises "double drop"
    (Invalid_argument "Cluster.drop: dropped handle") (fun () -> C.drop t h)

let prop_cluster_externalize =
  (* structure is preserved no matter which node it is read from *)
  let gen =
    QCheck.Gen.(
      let atom = map (fun n -> D.Int n) (int_range 0 99) in
      let rec go depth =
        if depth = 0 then atom
        else
          frequency
            [ (3, atom);
              (2, int_range 1 4 >>= fun len -> map D.list (list_repeat len (go (depth - 1)))) ]
      in
      int_range 1 5 >>= fun len -> map D.list (list_repeat len (go 2)))
  in
  QCheck.Test.make ~name:"externalize is node-independent" ~count:60
    (QCheck.make ~print:Sexp.to_string gen) (fun x ->
      let t = C.create ~nodes:3 ~combining:false () in
      let h = C.read_in t ~node:0 x in
      let r1 = C.send t h ~to_node:1 in
      let r2 = C.send t r1 ~to_node:2 in
      D.equal x (C.externalize t h)
      && D.equal x (C.externalize t r1)
      && D.equal x (C.externalize t r2))

let () =
  Alcotest.run "cluster"
    [ ("cluster",
       [ Alcotest.test_case "local access free" `Quick test_local_access_is_free;
         Alcotest.test_case "remote access messages" `Quick test_remote_access_messages;
         Alcotest.test_case "cross-node cons" `Quick test_cross_node_cons;
         Alcotest.test_case "weights and death" `Quick test_weight_accounting_and_death;
         Alcotest.test_case "combining" `Quick test_combining_reduces_messages;
         Alcotest.test_case "remote walk" `Quick test_remote_walk;
         Alcotest.test_case "double drop" `Quick test_double_drop ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_cluster_externalize ]) ]
