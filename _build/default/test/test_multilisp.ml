(* Tests for the Chapter 6 Multilisp extensions: reference weighting vs
   naive distributed counting, combining queues, and the futures
   scheduling model. *)

module R = Multilisp.Refweight
module F = Multilisp.Futures

(* ---- reference weighting ---- *)

let test_weighted_local_copies_free () =
  let t = R.create ~nodes:4 ~scheme:R.Weighted ~combining:false () in
  let _obj, r = R.create_object t ~node:0 in
  (* copying across nodes costs no message under weighting (Fig 6.3) *)
  let copies = List.init 10 (fun i -> R.copy_ref t r ~to_node:(i mod 4)) in
  Alcotest.(check int) "no copy messages" 0 (R.messages t);
  List.iter (fun c -> R.drop_ref t c) copies;
  ignore copies

let test_naive_copies_cost_messages () =
  let t = R.create ~nodes:4 ~scheme:R.Naive ~combining:false () in
  let _obj, r = R.create_object t ~node:0 in
  let r1 = R.copy_ref t r ~to_node:1 in       (* holder 0 = owner: free *)
  let _r2 = R.copy_ref t r1 ~to_node:2 in     (* holder 1 <> owner: message *)
  Alcotest.(check int) "remote copy sends to owner" 1 (R.messages t)

let test_object_death () =
  List.iter
    (fun scheme ->
       let t = R.create ~nodes:3 ~scheme ~combining:false () in
       let obj, r = R.create_object t ~node:0 in
       let c1 = R.copy_ref t r ~to_node:1 in
       let c2 = R.copy_ref t c1 ~to_node:2 in
       Alcotest.(check bool) "alive with refs" true (R.alive t obj);
       R.drop_ref t r;
       R.drop_ref t c1;
       Alcotest.(check bool) "still alive" true (R.alive t obj);
       R.drop_ref t c2;
       Alcotest.(check bool) "dead once all dropped" false (R.alive t obj))
    [ R.Naive; R.Weighted ]

let test_weight_invariant () =
  let t = R.create ~nodes:4 ~scheme:R.Weighted ~combining:false () in
  let obj, r = R.create_object t ~node:0 in
  let refs = ref [ r ] in
  let rng = Util.Rng.create ~seed:7 in
  for _ = 1 to 50 do
    match !refs with
    | [] -> ()
    | refs_now ->
      let pick = List.nth refs_now (Util.Rng.int rng (List.length refs_now)) in
      if Util.Rng.bool rng ~p:0.7 then
        refs := R.copy_ref t pick ~to_node:(Util.Rng.int rng 4) :: !refs
      else begin
        R.drop_ref t pick;
        refs := List.filter (fun x -> x != pick) !refs
      end
  done;
  R.flush t;
  (* the defining invariant: owner total = sum of extant weights *)
  Alcotest.(check int) "owner total = extant weight" (R.extant_weight t obj)
    (R.owner_total t obj)

let test_weight_exhaustion_refill () =
  let t = R.create ~nodes:2 ~scheme:R.Weighted ~combining:false () in
  let obj, r = R.create_object t ~node:0 in
  (* halve the weight until it pins at 1, forcing a refill message *)
  let current = ref (R.copy_ref t r ~to_node:1) in
  let dropped = ref [] in
  for _ = 1 to 40 do
    let c = R.copy_ref t !current ~to_node:1 in
    dropped := !current :: !dropped;
    current := c
  done;
  Alcotest.(check bool) "refill messages eventually sent" true (R.messages t > 0);
  R.drop_ref t !current;
  List.iter (fun c -> R.drop_ref t c) !dropped;
  R.drop_ref t r;
  R.flush t;
  Alcotest.(check bool) "object dies despite refills" false (R.alive t obj)

let test_combining_queue () =
  (* many drops of references to the same object from the same node must
     combine into fewer messages (Fig 6.6) *)
  let run combining =
    let t = R.create ~flush_at:16 ~nodes:2 ~scheme:R.Weighted ~combining () in
    let _obj, r = R.create_object t ~node:0 in
    let copies = List.init 12 (fun _ -> R.copy_ref t r ~to_node:1) in
    List.iter (fun c -> R.drop_ref t c) copies;
    R.flush t;
    R.messages t
  in
  let plain = run false and combined = run true in
  Alcotest.(check int) "12 drop messages without combining" 12 plain;
  Alcotest.(check int) "one combined message" 1 combined

let test_weighted_beats_naive_messages () =
  (* the ablation headline: a copy-heavy distributed workload sends far
     fewer messages under weighting; combining queues (Fig 6.6) batch the
     remaining weight returns *)
  let run (scheme, combining) =
    let t = R.create ~nodes:8 ~scheme ~combining () in
    let _obj, r = R.create_object t ~node:0 in
    let rng = Util.Rng.create ~seed:11 in
    let refs = ref [ r ] in
    for _ = 1 to 200 do
      let pick = List.nth !refs (Util.Rng.int rng (List.length !refs)) in
      refs := R.copy_ref t pick ~to_node:(Util.Rng.int rng 8) :: !refs
    done;
    List.iter (fun c -> R.drop_ref t c) !refs;
    R.flush t;
    R.messages t
  in
  let naive = run (R.Naive, false) in
  let weighted = run (R.Weighted, false) in
  let combined = run (R.Weighted, true) in
  Alcotest.(check bool) "weighting alone cuts traffic" true (weighted < naive);
  Alcotest.(check bool) "with combining, far fewer messages" true
    (combined * 2 < naive)

let test_double_drop_rejected () =
  let t = R.create ~nodes:2 ~scheme:R.Weighted ~combining:false () in
  let _obj, r = R.create_object t ~node:0 in
  R.drop_ref t r;
  Alcotest.check_raises "double drop"
    (Invalid_argument "Refweight.drop_ref: double drop") (fun () -> R.drop_ref t r)

(* ---- futures ---- *)

let test_futures_times () =
  (* ((a b) (c d)) shaped task: root cost 1, two subtasks cost 1 each with
     two leaves cost 2 each *)
  let leaf = F.leaf 2 in
  let t = F.node 1 [ F.node 1 [ leaf; leaf ]; F.node 1 [ leaf; leaf ] ] in
  Alcotest.(check int) "sequential = total work" 11 (F.sequential_time t);
  Alcotest.(check int) "critical path" 4 (F.critical_path t);
  Alcotest.(check int) "1 processor = sequential" 11 (F.makespan t ~processors:1);
  Alcotest.(check bool) "4 processors near critical path" true
    (F.makespan t ~processors:4 <= 5);
  Alcotest.(check bool) "speedup between 1 and work/span" true
    (let s = F.speedup t ~processors:4 in
     s >= 1. && s <= 11. /. 4. +. 0.001)

let test_futures_bounds_random () =
  let rng = Util.Rng.create ~seed:3 in
  let rec build depth =
    if depth = 0 then F.leaf (1 + Util.Rng.int rng 5)
    else
      F.node (1 + Util.Rng.int rng 3)
        (List.init (1 + Util.Rng.int rng 3) (fun _ -> build (depth - 1)))
  in
  for _ = 1 to 20 do
    let t = build 3 in
    let seq = F.sequential_time t and span = F.critical_path t in
    List.iter
      (fun p ->
         let m = F.makespan t ~processors:p in
         Alcotest.(check bool) "span <= makespan <= work" true (span <= m && m <= seq))
      [ 1; 2; 4; 16 ]
  done

let test_futures_monotone_in_processors () =
  let t =
    F.node 1 (List.init 8 (fun i -> F.node 1 [ F.leaf (i + 1); F.leaf (9 - i) ]))
  in
  let m2 = F.makespan t ~processors:2 in
  let m8 = F.makespan t ~processors:8 in
  Alcotest.(check bool) "more processors never slower" true (m8 <= m2)

let test_of_expr () =
  let t = F.of_expr (Sexp.parse "(f (g 1 2) (h 3))") in
  Alcotest.(check bool) "arguments parallelise" true
    (F.critical_path t < F.sequential_time t)

let () =
  Alcotest.run "multilisp"
    [ ("refweight",
       [ Alcotest.test_case "weighted copies are free" `Quick test_weighted_local_copies_free;
         Alcotest.test_case "naive copies message" `Quick test_naive_copies_cost_messages;
         Alcotest.test_case "object death" `Quick test_object_death;
         Alcotest.test_case "weight invariant" `Quick test_weight_invariant;
         Alcotest.test_case "exhaustion refill" `Quick test_weight_exhaustion_refill;
         Alcotest.test_case "combining queue" `Quick test_combining_queue;
         Alcotest.test_case "weighted beats naive" `Quick test_weighted_beats_naive_messages;
         Alcotest.test_case "double drop" `Quick test_double_drop_rejected ]);
      ("futures",
       [ Alcotest.test_case "times" `Quick test_futures_times;
         Alcotest.test_case "bounds" `Quick test_futures_bounds_random;
         Alcotest.test_case "monotone" `Quick test_futures_monotone_in_processors;
         Alcotest.test_case "of_expr" `Quick test_of_expr ]) ]
