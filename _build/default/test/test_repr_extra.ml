(* Tests for the conc representation and the BLAST exception tables —
   the remaining §2.3.3 schemes — including the structure-surgery cost
   asymmetry the thesis discusses in §4.3.3.2. *)

module D = Sexp.Datum

let d = Alcotest.testable Sexp.pp D.equal

let gen_list =
  QCheck.Gen.(
    let atom =
      oneof
        [ map (fun n -> D.Int n) (int_range 0 99);
          map (fun i -> D.Sym (Printf.sprintf "a%d" i)) (int_range 0 20) ]
    in
    let rec go depth =
      if depth = 0 then atom
      else
        frequency
          [ (3, atom);
            (2, int_range 1 5 >>= fun len -> map D.list (list_repeat len (go (depth - 1)))) ]
    in
    int_range 1 6 >>= fun len -> map D.list (list_repeat len (go 3)))

let arb_list = QCheck.make ~print:Sexp.to_string gen_list

(* ---- conc ---- *)

let test_conc_roundtrip () =
  let x = Sexp.parse "(a b (c d) e)" in
  Alcotest.check d "roundtrip" x (Repr.Conc.to_datum (Repr.Conc.of_datum x))

let test_conc_concat_is_o1 () =
  let a = Repr.Conc.of_datum (Sexp.parse "(1 2 3)") in
  let b = Repr.Conc.of_datum (Sexp.parse "(4 5)") in
  let ab = Repr.Conc.concat a b in
  Alcotest.check d "concat result" (Sexp.parse "(1 2 3 4 5)") (Repr.Conc.to_datum ab);
  let s = Repr.Conc.space ab in
  Alcotest.(check int) "exactly one conc cell" 1 s.Repr.Conc.conc_cells;
  Alcotest.(check int) "no element copied" 5 s.Repr.Conc.tuple_cells;
  (* operands unchanged (non-destructive, unlike rplacd-append) *)
  Alcotest.check d "left operand intact" (Sexp.parse "(1 2 3)") (Repr.Conc.to_datum a)

let test_conc_nth_hops () =
  let t =
    Repr.Conc.concat
      (Repr.Conc.concat
         (Repr.Conc.of_datum (Sexp.parse "(1 2)"))
         (Repr.Conc.of_datum (Sexp.parse "(3)")))
      (Repr.Conc.of_datum (Sexp.parse "(4 5)"))
  in
  let elem, hops = Repr.Conc.nth t 0 in
  (match elem with
   | Repr.Conc.Atom a -> Alcotest.check d "element 0" (D.Int 1) a
   | Sub _ -> Alcotest.fail "expected atom");
  Alcotest.(check int) "two conc hops to the deepest tuple" 2 hops;
  let _, hops4 = Repr.Conc.nth t 4 in
  Alcotest.(check int) "one hop to the right tuple" 1 hops4;
  Alcotest.(check int) "length" 5 (Repr.Conc.length t)

let test_conc_flatten () =
  let t =
    Repr.Conc.concat
      (Repr.Conc.of_datum (Sexp.parse "(1 2)"))
      (Repr.Conc.of_datum (Sexp.parse "(3 4)"))
  in
  let flat = Repr.Conc.flatten t in
  Alcotest.check d "same content" (Repr.Conc.to_datum t) (Repr.Conc.to_datum flat);
  Alcotest.(check int) "no conc cells left" 0 (Repr.Conc.space flat).Repr.Conc.conc_cells;
  let _, hops = Repr.Conc.nth flat 3 in
  Alcotest.(check int) "direct access after compaction" 0 hops

(* ---- Deutsch offset coding ---- *)

let test_offset_roundtrip () =
  let t = Repr.Offset_coding.create () in
  let x = Sexp.parse "(a b (c d) e)" in
  match Repr.Offset_coding.encode t x with
  | Some addr -> Alcotest.check d "roundtrip" x (Repr.Offset_coding.decode t addr)
  | None -> Alcotest.fail "expected a cell"

let test_offset_codes () =
  let t = Repr.Offset_coding.create () in
  let addr = Option.get (Repr.Offset_coding.encode t (Sexp.parse "(a b c)")) in
  (* a contiguous spine: codes 1, 1, 0 *)
  Alcotest.(check int) "first cell: cdr at +1" 1 (Repr.Offset_coding.cdr_code t addr);
  Alcotest.(check int) "second cell: cdr at +1" 1 (Repr.Offset_coding.cdr_code t (addr + 1));
  Alcotest.(check int) "last cell: nil" 0 (Repr.Offset_coding.cdr_code t (addr + 2))

let test_offset_rplacd_near () =
  let t = Repr.Offset_coding.create () in
  let a = Option.get (Repr.Offset_coding.encode t (Sexp.parse "(a b)")) in
  (* point a's cdr back at its own second cell: offset 1, no indirection *)
  let ind = Repr.Offset_coding.rplacd t a (`Cell (a + 1)) in
  Alcotest.(check bool) "in-reach rewrite" false ind;
  Alcotest.(check int) "no indirections" 0 (Repr.Offset_coding.indirections t)

let test_offset_rplacd_far () =
  let t = Repr.Offset_coding.create () in
  (* two lists laid far apart (a filler in between busts the 127 reach) *)
  let a = Option.get (Repr.Offset_coding.encode t (Sexp.parse "(a b)")) in
  ignore (Repr.Offset_coding.encode t (Sexp.Datum.of_ints (List.init 200 Fun.id)));
  let c = Option.get (Repr.Offset_coding.encode t (Sexp.parse "(x y)")) in
  (* far rplacd needs the escape cells *)
  let ind = Repr.Offset_coding.rplacd t a (`Cell c) in
  Alcotest.(check bool) "escape created" true ind;
  Alcotest.(check int) "one indirection" 1 (Repr.Offset_coding.indirections t);
  Alcotest.check d "structure reads back through the escape"
    (Sexp.parse "(a x y)") (Repr.Offset_coding.decode t a);
  (* backward rplacd also needs the escape (offsets are positive only);
     target a+1 is still a direct low-address cell *)
  let ind2 = Repr.Offset_coding.rplacd t c (`Cell (a + 1)) in
  Alcotest.(check bool) "backward pointer escapes" true ind2;
  Alcotest.check d "backward structure reads back" (Sexp.parse "(x b)")
    (Repr.Offset_coding.decode t c)

let test_offset_rplacd_nil () =
  let t = Repr.Offset_coding.create () in
  let a = Option.get (Repr.Offset_coding.encode t (Sexp.parse "(a b c)")) in
  ignore (Repr.Offset_coding.rplacd t a `Nil);
  Alcotest.check d "truncated" (Sexp.parse "(a)") (Repr.Offset_coding.decode t a)

(* ---- exception tables ---- *)

let fig_list = Sexp.parse "(a b c (d e) f g)"

let test_et_roundtrip () =
  Alcotest.check d "fig 2.10 list roundtrip" fig_list
    (Repr.Exception_table.decode (Repr.Exception_table.encode fig_list))

let test_et_node_numbers () =
  (* Fig 2.9/BLAST numbering: in (a b), a sits at node 2 (car of root),
     b at node 6 (car of cdr) *)
  let t = Repr.Exception_table.encode (Sexp.parse "(a b)") in
  Alcotest.(check (option d)) "a at node 2" (Some (D.sym "a"))
    (Repr.Exception_table.lookup t 2);
  Alcotest.(check (option d)) "b at node 6" (Some (D.sym "b"))
    (Repr.Exception_table.lookup t 6);
  Alcotest.(check (option d)) "nothing at node 7" None
    (Repr.Exception_table.lookup t 7);
  Alcotest.(check int) "n entries only" 2 (Repr.Exception_table.entries t)

let test_et_split () =
  Repr.Exception_table.reset_scan_counter ();
  let t = Repr.Exception_table.encode fig_list in
  let car_t, cdr_t = Repr.Exception_table.split t in
  Alcotest.check d "car part" (D.sym "a") (Repr.Exception_table.decode car_t);
  Alcotest.check d "cdr part" (Sexp.parse "(b c (d e) f g)")
    (Repr.Exception_table.decode cdr_t);
  (* the §4.3.3.2 cost: splitting scanned every entry *)
  Alcotest.(check int) "split scanned all 7 entries" 7
    (Repr.Exception_table.entries_scanned ())

let test_et_merge_is_cheap () =
  Repr.Exception_table.reset_scan_counter ();
  let a = Repr.Exception_table.encode (Sexp.parse "(a b)") in
  let b = Repr.Exception_table.encode (Sexp.parse "(c)") in
  let m = Repr.Exception_table.merge a b in
  Alcotest.check d "merged structure" (Sexp.parse "((a b) c)")
    (Repr.Exception_table.decode m);
  Alcotest.(check int) "no entries scanned" 0 (Repr.Exception_table.entries_scanned ());
  Alcotest.(check int) "one forwarding pair" 1 (Repr.Exception_table.forwardings m);
  (* lookups route through the forwarding entries: b's path in the merged
     tree is car,cdr,car = 010, node 1010b = 10 *)
  Alcotest.(check (option d)) "lookup through forwarding" (Some (D.sym "b"))
    (Repr.Exception_table.lookup m 10);
  (* splitting a merged table is free: the forwardings come apart *)
  let a', b' = Repr.Exception_table.split m in
  Alcotest.(check int) "split of a merge scans nothing" 0
    (Repr.Exception_table.entries_scanned ());
  Alcotest.check d "car side" (Sexp.parse "(a b)") (Repr.Exception_table.decode a');
  Alcotest.check d "cdr side" (Sexp.parse "(c)") (Repr.Exception_table.decode b')

let props =
  List.map QCheck_alcotest.to_alcotest
    [ QCheck.Test.make ~name:"conc roundtrip" ~count:200 arb_list (fun x ->
          D.equal x (Repr.Conc.to_datum (Repr.Conc.of_datum x)));
      QCheck.Test.make ~name:"conc concat = datum append" ~count:150
        (QCheck.pair arb_list arb_list) (fun (a, b) ->
          D.equal (D.append a b)
            (Repr.Conc.to_datum
               (Repr.Conc.concat (Repr.Conc.of_datum a) (Repr.Conc.of_datum b))));
      QCheck.Test.make ~name:"offset-coding roundtrip" ~count:200 arb_list (fun x ->
          let t = Repr.Offset_coding.create () in
          match Repr.Offset_coding.encode t x with
          | Some addr -> D.equal x (Repr.Offset_coding.decode t addr)
          | None -> false);
      QCheck.Test.make ~name:"exception-table roundtrip" ~count:200 arb_list (fun x ->
          D.equal x (Repr.Exception_table.decode (Repr.Exception_table.encode x)));
      QCheck.Test.make ~name:"exception-table split = car/cdr" ~count:150 arb_list
        (fun x ->
          let a, b = Repr.Exception_table.split (Repr.Exception_table.encode x) in
          D.equal (D.car x) (Repr.Exception_table.decode a)
          && D.equal (D.cdr x) (Repr.Exception_table.decode b));
      QCheck.Test.make ~name:"exception-table entries = n" ~count:150 arb_list (fun x ->
          Repr.Exception_table.entries (Repr.Exception_table.encode x)
          = Sexp.Metrics.n x) ]

let () =
  Alcotest.run "repr_extra"
    [ ("conc",
       [ Alcotest.test_case "roundtrip" `Quick test_conc_roundtrip;
         Alcotest.test_case "O(1) concat" `Quick test_conc_concat_is_o1;
         Alcotest.test_case "nth hops" `Quick test_conc_nth_hops;
         Alcotest.test_case "flatten" `Quick test_conc_flatten ]);
      ("offset_coding",
       [ Alcotest.test_case "roundtrip" `Quick test_offset_roundtrip;
         Alcotest.test_case "codes" `Quick test_offset_codes;
         Alcotest.test_case "rplacd in reach" `Quick test_offset_rplacd_near;
         Alcotest.test_case "rplacd escape" `Quick test_offset_rplacd_far;
         Alcotest.test_case "rplacd nil" `Quick test_offset_rplacd_nil ]);
      ("exception_table",
       [ Alcotest.test_case "roundtrip" `Quick test_et_roundtrip;
         Alcotest.test_case "node numbers" `Quick test_et_node_numbers;
         Alcotest.test_case "split cost" `Quick test_et_split;
         Alcotest.test_case "cheap merge" `Quick test_et_merge_is_cheap ]);
      ("properties", props) ]
