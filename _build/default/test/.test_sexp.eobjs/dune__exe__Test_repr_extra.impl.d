test/test_repr_extra.ml: Alcotest Fun List Option Printf QCheck QCheck_alcotest Repr Sexp
