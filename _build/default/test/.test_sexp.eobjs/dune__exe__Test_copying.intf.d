test/test_copying.mli:
