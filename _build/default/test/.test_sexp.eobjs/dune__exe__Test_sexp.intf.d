test/test_sexp.mli:
