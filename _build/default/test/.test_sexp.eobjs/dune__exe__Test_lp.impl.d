test/test_lp.ml: Alcotest Core List QCheck QCheck_alcotest Sexp
