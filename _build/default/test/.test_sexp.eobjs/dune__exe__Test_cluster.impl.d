test/test_cluster.ml: Alcotest Core List Multilisp QCheck QCheck_alcotest Sexp
