test/test_lisp.mli:
