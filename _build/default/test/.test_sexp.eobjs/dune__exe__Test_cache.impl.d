test/test_cache.ml: Alcotest Cache Float List QCheck QCheck_alcotest
