test/test_multilisp.ml: Alcotest List Multilisp Sexp Util
