test/test_multilisp.mli:
