test/test_core.ml: Alcotest Array Core Float List QCheck QCheck_alcotest Sexp Trace
