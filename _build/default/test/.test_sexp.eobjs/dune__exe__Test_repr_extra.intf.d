test/test_repr_extra.mli:
