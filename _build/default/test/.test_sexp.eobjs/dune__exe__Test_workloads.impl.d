test/test_workloads.ml: Alcotest Analysis Core Lisp List Option Sexp Trace Workloads
