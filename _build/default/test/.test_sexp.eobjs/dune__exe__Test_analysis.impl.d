test/test_analysis.ml: Alcotest Analysis Array Float List QCheck QCheck_alcotest Sexp Trace
