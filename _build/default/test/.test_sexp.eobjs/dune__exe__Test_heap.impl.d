test/test_heap.ml: Alcotest Hashtbl Heap List Option Printf QCheck QCheck_alcotest Sexp
