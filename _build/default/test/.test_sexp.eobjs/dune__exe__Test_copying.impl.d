test/test_copying.ml: Alcotest Heap List QCheck QCheck_alcotest
