test/test_repr.mli:
