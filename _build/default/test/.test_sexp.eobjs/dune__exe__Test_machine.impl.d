test/test_machine.ml: Alcotest Array Core Lisp List Machine Option Printf QCheck QCheck_alcotest Sexp String Workloads
