test/test_sexp.ml: Alcotest List Printf QCheck QCheck_alcotest Sexp
