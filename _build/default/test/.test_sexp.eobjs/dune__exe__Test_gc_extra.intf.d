test/test_gc_extra.mli:
