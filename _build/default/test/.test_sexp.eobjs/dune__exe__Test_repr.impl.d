test/test_repr.ml: Alcotest Heap List Printf QCheck QCheck_alcotest Repr Sexp
