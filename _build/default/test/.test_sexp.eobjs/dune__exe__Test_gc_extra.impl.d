test/test_gc_extra.ml: Alcotest Heap List Util
