test/test_trace.ml: Alcotest Analysis Array Filename List Printf QCheck QCheck_alcotest Sexp Sys Trace
