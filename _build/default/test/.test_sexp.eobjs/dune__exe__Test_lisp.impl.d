test/test_lisp.ml: Alcotest Array Lisp List Printf QCheck QCheck_alcotest Sexp Trace
