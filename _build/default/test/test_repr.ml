(* Tests for the list representation schemes of §2.3.3: encode/decode
   round-trips, the worked examples of Figures 2.8-2.10 and 3.2, mutation
   behaviour under cdr-coding, and the space-cost model. *)

module D = Sexp.Datum

let d = Alcotest.testable Sexp.pp Sexp.Datum.equal

(* Proper nested lists with non-nil atoms: common domain of all schemes. *)
let gen_list =
  QCheck.Gen.(
    let atom =
      oneof
        [ map (fun n -> D.Int n) (int_range 0 99);
          map (fun i -> D.Sym (Printf.sprintf "a%d" i)) (int_range 0 20) ]
    in
    let rec go depth =
      if depth = 0 then atom
      else
        frequency
          [ (3, atom);
            (2, int_range 1 5 >>= fun len -> map D.list (list_repeat len (go (depth - 1)))) ]
    in
    int_range 1 6 >>= fun len -> map D.list (list_repeat len (go 3)))

let arb_list = QCheck.make ~print:Sexp.to_string gen_list

let fig_list = Sexp.parse "(a b c (d e) f g)"

(* ---- Two-pointer ---- *)

let test_two_pointer () =
  let t = Repr.Two_pointer.create ~capacity:64 in
  let root = Repr.Two_pointer.encode t fig_list in
  Alcotest.check d "roundtrip" fig_list (Repr.Two_pointer.decode t root);
  Alcotest.(check int) "cells = n+p" 8 (Repr.Two_pointer.cells t);
  Alcotest.(check int) "bits = 2*32*cells" (2 * 32 * 8) (Repr.Two_pointer.bits t ~word_bits:32);
  (* Every cell costs two serially dependent reads in a full traversal. *)
  Alcotest.(check int) "dependent reads" 16 (Repr.Two_pointer.dependent_reads t root)

(* ---- cdr-coding ---- *)

let test_cdr_coding_layout () =
  let t = Repr.Cdr_coding.create () in
  let root = Repr.Cdr_coding.encode t (Sexp.parse "(a b c)") in
  (* A linear list is one compact run: cdr-next, cdr-next, cdr-nil. *)
  Alcotest.(check int) "3 cells for 3 atoms" 3 (Repr.Cdr_coding.cells t);
  (match root with
   | Repr.Cdr_coding.Ref i ->
     (match Repr.Cdr_coding.cdr t i with
      | Repr.Cdr_coding.Ref j -> Alcotest.(check int) "cdr is next cell" (i + 1) j
      | _ -> Alcotest.fail "expected Ref");
     (match Repr.Cdr_coding.cdr t (i + 2) with
      | Repr.Cdr_coding.Atom Heap.Word.Nil -> ()
      | _ -> Alcotest.fail "expected cdr-nil at run end")
   | _ -> Alcotest.fail "expected Ref root")

let test_cdr_coding_roundtrip_fig () =
  let t = Repr.Cdr_coding.create () in
  let root = Repr.Cdr_coding.encode t fig_list in
  Alcotest.check d "fig 2.8 roundtrip" fig_list (Repr.Cdr_coding.decode t root);
  (* n+p = 8 cells, same count as two-pointer but ~half the bits. *)
  Alcotest.(check int) "compact cells" 8 (Repr.Cdr_coding.cells t);
  Alcotest.(check bool) "fewer bits than two-pointer" true
    (Repr.Cdr_coding.bits t ~word_bits:29 < 2 * 32 * 8)

let test_cdr_coding_dotted () =
  let t = Repr.Cdr_coding.create () in
  let x = Sexp.parse "(a b . c)" in
  let root = Repr.Cdr_coding.encode t x in
  Alcotest.check d "dotted pair uses normal/error pair" x (Repr.Cdr_coding.decode t root)

let test_cdr_coding_rplacd () =
  let t = Repr.Cdr_coding.create () in
  let root = Repr.Cdr_coding.encode t (Sexp.parse "(a b c)") in
  let i = match root with Repr.Cdr_coding.Ref i -> i | _ -> assert false in
  (* rplacd the first cell: compact cell must grow an invisible pointer. *)
  let made_invisible =
    Repr.Cdr_coding.rplacd t i (Repr.Cdr_coding.Atom (Heap.Word.Int 42))
  in
  Alcotest.(check bool) "invisible pointer created" true made_invisible;
  Alcotest.check d "mutated structure reads back" (Sexp.parse "(a . 42)")
    (Repr.Cdr_coding.decode t root);
  Alcotest.(check bool) "dereference cost recorded" true
    (Repr.Cdr_coding.invisible_hops t > 0)

let test_cdr_coding_rplaca () =
  let t = Repr.Cdr_coding.create () in
  let root = Repr.Cdr_coding.encode t (Sexp.parse "(a b)") in
  let i = match root with Repr.Cdr_coding.Ref i -> i | _ -> assert false in
  Repr.Cdr_coding.rplaca t i (Repr.Cdr_coding.Atom (Heap.Word.Int 7));
  Alcotest.check d "rplaca in place" (Sexp.parse "(7 b)") (Repr.Cdr_coding.decode t root)

(* ---- Linked vector ---- *)

let test_linked_vector_roundtrip () =
  let t = Repr.Linked_vector.create ~vector_size:4 in
  (match Repr.Linked_vector.encode t fig_list with
   | Some id -> Alcotest.check d "roundtrip" fig_list (Repr.Linked_vector.decode t id)
   | None -> Alcotest.fail "expected a list id")

let test_linked_vector_fragmentation () =
  (* A 10-element linear list in 4-cell vectors needs indirections. *)
  let t = Repr.Linked_vector.create ~vector_size:4 in
  let l = D.of_ints [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  (match Repr.Linked_vector.encode t l with
   | Some id ->
     Alcotest.check d "long list roundtrip" l (Repr.Linked_vector.decode t id);
     (* 3+3+4 elements across three 4-slot vectors, two indirections. *)
     Alcotest.(check int) "indirections created" 2 (Repr.Linked_vector.indirections t);
     Alcotest.(check int) "vectors chained" 3 (Repr.Linked_vector.vectors t)
   | None -> Alcotest.fail "expected a list id")

let test_linked_vector_big_vectors_no_indirection () =
  let t = Repr.Linked_vector.create ~vector_size:32 in
  let l = D.of_ints [ 1; 2; 3; 4; 5 ] in
  ignore (Repr.Linked_vector.encode t l);
  Alcotest.(check int) "no indirections in a big vector" 0
    (Repr.Linked_vector.indirections t);
  (* ...but internal fragmentation instead. *)
  Alcotest.(check int) "used" 5 (Repr.Linked_vector.used_cells t);
  Alcotest.(check int) "total" 32 (Repr.Linked_vector.total_cells t)

(* ---- CDAR coding ---- *)

let test_cdar_fig_2_10 () =
  (* Figure 2.10: CDAR codes of (A B C (D E) F G), width 6. *)
  let entries = Repr.Cdar.encode fig_list in
  let code sym =
    let e = List.find (fun e -> D.equal e.Repr.Cdar.value (D.sym sym)) entries in
    Repr.Cdar.code_string ~width:6 e
  in
  Alcotest.(check string) "A" "000000" (code "a");
  Alcotest.(check string) "B" "000001" (code "b");
  Alcotest.(check string) "C" "000011" (code "c");
  Alcotest.(check string) "D" "000111" (code "d");
  Alcotest.(check string) "E" "010111" (code "e");
  Alcotest.(check string) "F" "001111" (code "f");
  Alcotest.(check string) "G" "011111" (code "g");
  Alcotest.(check int) "n cells only" 7 (Repr.Cdar.cells entries)

let test_cdar_roundtrip () =
  let entries = Repr.Cdar.encode fig_list in
  Alcotest.check d "decode rebuilds" fig_list (Repr.Cdar.decode entries)

let test_cdar_lookup () =
  let entries = Repr.Cdar.encode fig_list in
  (* E is at path cdr cdr cdr car cdr car = [1;1;1;0;1;0] root-first. *)
  Alcotest.(check (option (Alcotest.testable Sexp.pp D.equal))) "lookup E"
    (Some (D.sym "e"))
    (Repr.Cdar.lookup entries [ true; true; true; false; true; false ]);
  Alcotest.(check (option (Alcotest.testable Sexp.pp D.equal))) "lookup miss" None
    (Repr.Cdar.lookup entries [ false; false ])

(* ---- EPS ---- *)

let test_eps_fig_2_10 () =
  (* Figure 2.10: EPS triples of (A B C (D E) F G). *)
  let entries = Repr.Eps.encode fig_list in
  let find sym =
    let e = List.find (fun e -> D.equal e.Repr.Eps.value (D.sym sym)) entries in
    (e.Repr.Eps.left, e.Repr.Eps.right, e.Repr.Eps.position)
  in
  Alcotest.(check (triple int int int)) "A" (1, 0, 1) (find "a");
  Alcotest.(check (triple int int int)) "B" (1, 0, 2) (find "b");
  Alcotest.(check (triple int int int)) "C" (1, 0, 3) (find "c");
  Alcotest.(check (triple int int int)) "D" (2, 0, 4) (find "d");
  Alcotest.(check (triple int int int)) "E" (2, 1, 5) (find "e");
  Alcotest.(check (triple int int int)) "F" (2, 1, 6) (find "f");
  Alcotest.(check (triple int int int)) "G" (2, 2, 7) (find "g")

let test_eps_roundtrip () =
  let entries = Repr.Eps.encode fig_list in
  Alcotest.check d "decode rebuilds" fig_list (Repr.Eps.decode entries)

let test_eps_rejects_nil_element () =
  Alcotest.check_raises "nil element"
    (Invalid_argument "Eps.encode: nil element is not expressible") (fun () ->
      ignore (Repr.Eps.encode (Sexp.parse "(a nil b)")))

(* ---- Cost summary ---- *)

let test_cost_summary () =
  let s = Repr.Cost.summarize fig_list in
  Alcotest.(check int) "n" 7 s.Repr.Cost.n;
  Alcotest.(check int) "p" 1 s.Repr.Cost.p;
  Alcotest.(check int) "two-pointer cells" 8 s.Repr.Cost.two_pointer_cells;
  Alcotest.(check int) "structure-coded cells" 7 s.Repr.Cost.structure_coded_cells;
  Alcotest.(check bool) "cdr-coding saves space over two-pointer" true
    (s.Repr.Cost.cdr_coded_bits < s.Repr.Cost.two_pointer_bits)

(* ---- Properties ---- *)

let prop_roundtrip name encode_decode =
  QCheck.Test.make ~name ~count:200 arb_list encode_decode

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip "two-pointer roundtrip" (fun x ->
          let t = Repr.Two_pointer.create ~capacity:16384 in
          D.equal x (Repr.Two_pointer.decode t (Repr.Two_pointer.encode t x)));
      prop_roundtrip "cdr-coding roundtrip" (fun x ->
          let t = Repr.Cdr_coding.create () in
          D.equal x (Repr.Cdr_coding.decode t (Repr.Cdr_coding.encode t x)));
      prop_roundtrip "linked-vector roundtrip" (fun x ->
          let t = Repr.Linked_vector.create ~vector_size:4 in
          match Repr.Linked_vector.encode t x with
          | Some id -> D.equal x (Repr.Linked_vector.decode t id)
          | None -> D.is_atom x);
      prop_roundtrip "cdar roundtrip" (fun x ->
          D.equal x (Repr.Cdar.decode (Repr.Cdar.encode x)));
      prop_roundtrip "eps roundtrip" (fun x ->
          D.equal x (Repr.Eps.decode (Repr.Eps.encode x)));
      prop_roundtrip "cdar cells = n" (fun x ->
          Repr.Cdar.cells (Repr.Cdar.encode x) = Sexp.Metrics.n x);
      prop_roundtrip "eps cells = n" (fun x ->
          Repr.Eps.cells (Repr.Eps.encode x) = Sexp.Metrics.n x);
      prop_roundtrip "cdr-coding cells = n+p on pure lists" (fun x ->
          let t = Repr.Cdr_coding.create () in
          ignore (Repr.Cdr_coding.encode t x);
          Repr.Cdr_coding.cells t = Sexp.Metrics.two_pointer_cells x) ]

let () =
  Alcotest.run "repr"
    [ ("two_pointer", [ Alcotest.test_case "cost and roundtrip" `Quick test_two_pointer ]);
      ("cdr_coding",
       [ Alcotest.test_case "compact layout" `Quick test_cdr_coding_layout;
         Alcotest.test_case "fig 2.8 roundtrip" `Quick test_cdr_coding_roundtrip_fig;
         Alcotest.test_case "dotted pairs" `Quick test_cdr_coding_dotted;
         Alcotest.test_case "rplacd via invisible pointer" `Quick test_cdr_coding_rplacd;
         Alcotest.test_case "rplaca in place" `Quick test_cdr_coding_rplaca ]);
      ("linked_vector",
       [ Alcotest.test_case "roundtrip" `Quick test_linked_vector_roundtrip;
         Alcotest.test_case "fragmentation" `Quick test_linked_vector_fragmentation;
         Alcotest.test_case "big vectors" `Quick test_linked_vector_big_vectors_no_indirection ]);
      ("cdar",
       [ Alcotest.test_case "fig 2.10 codes" `Quick test_cdar_fig_2_10;
         Alcotest.test_case "roundtrip" `Quick test_cdar_roundtrip;
         Alcotest.test_case "lookup" `Quick test_cdar_lookup ]);
      ("eps",
       [ Alcotest.test_case "fig 2.10 triples" `Quick test_eps_fig_2_10;
         Alcotest.test_case "roundtrip" `Quick test_eps_roundtrip;
         Alcotest.test_case "rejects nil" `Quick test_eps_rejects_nil_element ]);
      ("cost", [ Alcotest.test_case "summary" `Quick test_cost_summary ]);
      ("properties", props) ]
