(* Integration tests: run the benchmark workloads end to end through the
   instrumented interpreter, check their computed outputs, and push their
   traces through the full analysis and simulation pipeline. *)

module D = Sexp.Datum

let d = Alcotest.testable Sexp.pp D.equal

let run_workload (w : Workloads.Registry.workload) =
  let i = Lisp.Interp.create () in
  Lisp.Prelude.load i;
  Lisp.Interp.provide_input i w.Workloads.Registry.input;
  let result = Lisp.Interp.run_program i w.Workloads.Registry.source in
  (Lisp.Value.to_datum result, Lisp.Interp.output i)

(* ---- workload correctness ---- *)

let test_plagen_output () =
  let w = Option.get (Workloads.Registry.find "plagen") in
  let result, output = run_workload w in
  (* the PLA has a positive number of deduplicated product terms, and the
     planes have consistent sizes *)
  (match result, output with
   | D.Int terms, D.Int terms' :: D.Int score :: D.Int aplane :: D.Int oplane :: _ ->
     Alcotest.(check bool) "terms positive" true (terms > 0);
     Alcotest.(check int) "write agrees with result" terms terms';
     Alcotest.(check int) "one AND row per term" terms aplane;
     Alcotest.(check int) "one OR column per output" 4 oplane;
     Alcotest.(check bool) "folding found shared literals" true (score > 0)
   | _ -> Alcotest.fail "unexpected plagen output shape")

let test_slang_decodes_bcd () =
  let w = Option.get (Workloads.Registry.find "slang") in
  let result, _ = run_workload w in
  (* ten vectors simulated *)
  Alcotest.check d "ten vectors" (D.Int 10) result

let test_slang_one_hot () =
  (* drive the decoder directly on digit 6 and check the one-hot output *)
  let i = Lisp.Interp.create () in
  Lisp.Prelude.load i;
  let module W = Workloads.Registry in
  let w = Option.get (W.find "slang") in
  match w.W.input with
  | nwires :: netlist :: outs :: _ ->
    (* run the program on a single vector to define its functions... *)
    Lisp.Interp.provide_input i
      [ nwires; netlist; outs; D.of_ints [ 0; 1; 1; 0 ]; D.Nil ];
    ignore (Lisp.Interp.run_program i w.W.source);
    (* ...then call sim-vector directly with fresh inputs *)
    Lisp.Interp.provide_input i [ netlist; outs; D.of_ints [ 0; 1; 1; 0 ] ];
    let r =
      Lisp.Interp.run_program i "(sim-vector 38 (read) (read) (read))"
    in
    Alcotest.check d "digit 6 is one-hot"
      (D.of_ints [ 0; 0; 0; 0; 0; 0; 1; 0; 0; 0 ])
      (Lisp.Value.to_datum r)
  | _ -> Alcotest.fail "unexpected slang input shape"

let test_lyra_finds_violations () =
  let w = Option.get (Workloads.Registry.find "lyra") in
  let result, output = run_workload w in
  (match result, output with
   | D.Int errs, D.Int errs' :: tally :: _ ->
     Alcotest.(check bool) "the random layout violates rules" true (errs > 0);
     Alcotest.(check int) "written count matches" errs errs';
     (* the tally's counts sum to the violation count *)
     let rec sum (t : D.t) acc =
       match t with
       | D.Nil -> acc
       | D.Cons (D.Cons (_, D.Cons (D.Int n, D.Nil)), rest) -> sum rest (acc + n)
       | _ -> Alcotest.fail "bad tally shape"
     in
     Alcotest.(check int) "tally sums to total" errs (sum tally 0)
   | _ -> Alcotest.fail "unexpected lyra output shape")

let test_editor_session () =
  let w = Option.get (Workloads.Registry.find "editor") in
  let result, output = run_workload w in
  (* the script substitutes acc->accum->result: counts must be found *)
  Alcotest.(check bool) "final count positive" true
    (match result with D.Int n -> n > 0 | _ -> false);
  Alcotest.(check bool) "commands produced output" true (List.length output > 10);
  (* the (find marker) command must have succeeded: t in the output *)
  Alcotest.(check bool) "find hit" true (List.exists (D.equal (D.sym "t")) output)

let test_pearl_updates () =
  let w = Option.get (Workloads.Registry.find "pearl") in
  let result, output = run_workload w in
  (match result with
   | D.Int n -> Alcotest.(check int) "db intact (4 records)" 4 n
   | _ -> Alcotest.fail "unexpected pearl result");
  (* gets return field values: some must be salary numbers bumped upward *)
  Alcotest.(check bool) "lookups answered" true
    (List.exists (function D.Int _ -> true | _ -> false) output)

(* ---- trace pipeline integration ---- *)

let test_traces_characterised () =
  (* the Fig 3.1 shape: access primitives dominate everywhere; slang is
     the cons outlier; pearl the rplac outlier *)
  let mix name =
    let w = Option.get (Workloads.Registry.find name) in
    Analysis.Prim_mix.analyze (Workloads.Registry.trace w)
  in
  let share m p = Analysis.Prim_mix.pct m p in
  let access m = share m Trace.Event.Car +. share m Trace.Event.Cdr in
  let plagen = mix "plagen" and slang = mix "slang" and pearl = mix "pearl" in
  let lyra = mix "lyra" and editor = mix "editor" in
  List.iter
    (fun (name, m) ->
       Alcotest.(check bool) (name ^ ": car+cdr majority") true (access m > 50.))
    [ ("plagen", plagen); ("lyra", lyra); ("editor", editor); ("pearl", pearl) ];
  Alcotest.(check bool) "slang is the cons outlier" true
    (share slang Trace.Event.Cons > 15.
     && share slang Trace.Event.Cons > share plagen Trace.Event.Cons +. 10.);
  let rplac m = share m Trace.Event.Rplaca +. share m Trace.Event.Rplacd in
  List.iter
    (fun (name, m) ->
       Alcotest.(check bool) ("pearl out-rplacs " ^ name) true (rplac pearl > rplac m))
    [ ("plagen", plagen); ("slang", slang); ("lyra", lyra); ("editor", editor) ]

let test_editor_np_outlier () =
  (* Table 3.1: EDITOR manipulates by far the most complex lists *)
  let np name =
    let w = Option.get (Workloads.Registry.find name) in
    let st = Analysis.Np_stats.analyze (Workloads.Registry.preprocessed w) in
    (Analysis.Np_stats.mean_n st, Analysis.Np_stats.mean_p st)
  in
  let en, ep = np "editor" in
  let pn, pp = np "pearl" in
  Alcotest.(check bool) "editor lists longer" true (en > pn);
  Alcotest.(check bool) "editor lists deeper" true (ep > pp)

let test_simulation_pipeline () =
  (* full path: workload -> trace -> preprocess -> SMALL simulation *)
  let w = Option.get (Workloads.Registry.find "pearl") in
  let pre = Workloads.Registry.preprocessed w in
  let stats =
    Core.Simulator.run
      { Core.Simulator.default_config with
        table_size = 512;
        cache = Some { Core.Simulator.cache_lines = 512; cache_line_size = 1 } }
      pre
  in
  Alcotest.(check bool) "no true overflow" false stats.Core.Simulator.true_overflow;
  Alcotest.(check bool) "hit rate sane" true
    (Core.Simulator.lpt_hit_rate stats > 0.3 && Core.Simulator.lpt_hit_rate stats < 1.);
  (* Table 5.2's magnitude check: 1-4 refops per primitive access *)
  let per_prim =
    float_of_int stats.Core.Simulator.lpt.Core.Lpt.refops
    /. float_of_int stats.Core.Simulator.events
  in
  Alcotest.(check bool) "refops per primitive in the paper's 1-8 band" true
    (per_prim > 0.5 && per_prim < 10.)

let test_list_sets_on_real_trace () =
  (* the Chapter 3 headline on a real trace: a handful of list sets cover
     most of the references *)
  let w = Option.get (Workloads.Registry.find "editor") in
  let pre = Workloads.Registry.preprocessed w in
  let r = Analysis.List_sets.partition ~separation:0.10 pre in
  let for80 = Analysis.List_sets.sets_for_coverage r 0.8 in
  Alcotest.(check bool) "few sets cover 80% of references" true (for80 <= 40);
  let stream = Analysis.List_sets.set_id_stream ~separation:0.10 pre in
  let lru = Analysis.Lru_stack.analyze stream in
  Alcotest.(check bool) "stack depth 4 captures most accesses" true
    (Analysis.Lru_stack.hit_fraction lru 4 > 0.6)

let () =
  Alcotest.run "workloads"
    [ ("programs",
       [ Alcotest.test_case "plagen output" `Slow test_plagen_output;
         Alcotest.test_case "slang decodes" `Slow test_slang_decodes_bcd;
         Alcotest.test_case "slang one-hot" `Slow test_slang_one_hot;
         Alcotest.test_case "lyra violations" `Slow test_lyra_finds_violations;
         Alcotest.test_case "editor session" `Slow test_editor_session;
         Alcotest.test_case "pearl updates" `Slow test_pearl_updates ]);
      ("characterisation",
       [ Alcotest.test_case "fig 3.1 shape" `Slow test_traces_characterised;
         Alcotest.test_case "editor n/p outlier" `Slow test_editor_np_outlier ]);
      ("pipeline",
       [ Alcotest.test_case "simulation" `Slow test_simulation_pipeline;
         Alcotest.test_case "list sets" `Slow test_list_sets_on_real_trace ]) ]
