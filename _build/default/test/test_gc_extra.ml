(* Tests for the surveyed heap-maintenance variants: M3L-style small
   saturating reference counts (§2.3.4, [Sans82a]) and FACOM Alpha-style
   sub-space counting ([Haya83a]). *)

module W = Heap.Word

(* ---- small counts ---- *)

let mk_small ?(capacity = 256) ?(width = 3) () =
  let store = Heap.Store.create ~capacity in
  (store, Heap.Small_counts.create store ~width)

let test_small_basic () =
  let store, sc = mk_small () in
  let a = Heap.Small_counts.alloc sc ~car:(W.Int 1) ~cdr:W.Nil in
  Alcotest.(check int) "count 1" 1 (Heap.Small_counts.count sc a);
  Heap.Small_counts.decr sc a;
  Alcotest.(check bool) "reclaimed on zero" false (Heap.Store.is_allocated store a)

let test_small_saturation () =
  let store, sc = mk_small ~width:3 () in
  let a = Heap.Small_counts.alloc sc ~car:W.Nil ~cdr:W.Nil in
  (* push the count past the 3-bit ceiling *)
  for _ = 1 to 10 do
    Heap.Small_counts.incr sc a
  done;
  Alcotest.(check bool) "saturated at 7" true (Heap.Small_counts.is_saturated sc a);
  Alcotest.(check int) "ceiling" 7 (Heap.Small_counts.count sc a);
  Alcotest.(check bool) "saturations counted" true
    ((Heap.Small_counts.counters sc).Heap.Small_counts.saturations >= 4);
  (* decrements no longer move it: the cell leaks *)
  for _ = 1 to 20 do
    Heap.Small_counts.decr sc a
  done;
  Alcotest.(check bool) "stuck cell survives counting" true
    (Heap.Store.is_allocated store a);
  (* ...until the backup collector runs *)
  let freed = Heap.Small_counts.backup_sweep sc ~roots:[] in
  Alcotest.(check int) "backup sweep reclaims it" 1 freed;
  Alcotest.(check bool) "gone" false (Heap.Store.is_allocated store a)

let test_small_stack_flag () =
  let store, sc = mk_small () in
  let a = Heap.Small_counts.alloc sc ~car:W.Nil ~cdr:W.Nil in
  Heap.Small_counts.set_stack_flag sc a true;
  Heap.Small_counts.decr sc a;
  Alcotest.(check bool) "flagged cell not reclaimed at zero" true
    (Heap.Store.is_allocated store a);
  (* the flag also roots the backup sweep *)
  ignore (Heap.Small_counts.backup_sweep sc ~roots:[]);
  Alcotest.(check bool) "flagged cell survives the sweep" true
    (Heap.Store.is_allocated store a);
  Heap.Small_counts.set_stack_flag sc a false;
  ignore (Heap.Small_counts.backup_sweep sc ~roots:[]);
  Alcotest.(check bool) "reclaimed once unflagged" false
    (Heap.Store.is_allocated store a)

let test_small_recovery_rate () =
  (* [Sans82a]: ~98% of garbage is reclaimed by tiny counts alone.
     Build/drop chains with occasional extra sharing that saturates a few
     cells, and check counting recovers the vast majority. *)
  let store, sc = mk_small ~capacity:4096 ~width:3 () in
  let rng = Util.Rng.create ~seed:6 in
  for _ = 1 to 300 do
    let cells =
      List.init 8 (fun i -> Heap.Small_counts.alloc sc ~car:(W.Int i) ~cdr:W.Nil)
    in
    (* a few cells get transiently hot (many increments then decrements) *)
    List.iter
      (fun a ->
         if Util.Rng.bool rng ~p:0.05 then begin
           for _ = 1 to 9 do Heap.Small_counts.incr sc a done;
           for _ = 1 to 9 do Heap.Small_counts.decr sc a done
         end)
      cells;
    List.iter (fun a -> Heap.Small_counts.decr sc a) cells
  done;
  ignore (Heap.Small_counts.backup_sweep sc ~roots:[]);
  let rate = Heap.Small_counts.count_recovery_rate sc in
  Alcotest.(check bool) "counting recovers the vast majority" true (rate > 0.9);
  Alcotest.(check bool) "but not everything (saturation leaks)" true (rate < 1.0);
  Alcotest.(check int) "heap empty after backup" 0 (Heap.Store.live store)

(* ---- sub-space counting ---- *)

let mk_sub ?(capacity = 64) ?(size = 8) () =
  let store = Heap.Store.create ~capacity in
  (store, Heap.Subspace.create store ~subspace_size:size)

let test_subspace_counts () =
  let _store, ss = mk_sub () in
  (* cells 0..7 are sub-space 0; force a cross-space pointer *)
  let a = Heap.Subspace.alloc ss ~car:W.Nil ~cdr:W.Nil in   (* space 0 *)
  Alcotest.(check int) "intra-space allocs don't count" 0
    (Heap.Subspace.subspace_count ss 0);
  (* fill space 0 so the next alloc lands in space 1 *)
  for _ = 1 to 7 do
    ignore (Heap.Subspace.alloc ss ~car:W.Nil ~cdr:W.Nil)
  done;
  let b = Heap.Subspace.alloc ss ~car:(W.Ptr a) ~cdr:W.Nil in
  Alcotest.(check int) "b is in space 1" 1 (Heap.Subspace.subspace_of ss b);
  Alcotest.(check int) "cross-space pointer counted" 1
    (Heap.Subspace.subspace_count ss 0);
  Heap.Subspace.set_car ss b W.Nil;
  Alcotest.(check int) "released on overwrite" 0 (Heap.Subspace.subspace_count ss 0)

let test_subspace_reclaims_cycles () =
  let store, ss = mk_sub () in
  (* an intra-sub-space cycle, unreferenced from outside *)
  let a = Heap.Subspace.alloc ss ~car:(W.Int 1) ~cdr:W.Nil in
  let b = Heap.Subspace.alloc ss ~car:(W.Int 2) ~cdr:(W.Ptr a) in
  Heap.Subspace.set_cdr ss a (W.Ptr b);
  Alcotest.(check int) "cycle is invisible to the space count" 0
    (Heap.Subspace.subspace_count ss 0);
  let freed = Heap.Subspace.reclaim_subspaces ss ~stack_roots:[] in
  Alcotest.(check int) "the cycle's space is recycled wholesale" 2 freed;
  Alcotest.(check int) "heap empty" 0 (Heap.Store.live store)

let test_subspace_stack_roots_protect () =
  let store, ss = mk_sub () in
  let a = Heap.Subspace.alloc ss ~car:(W.Int 1) ~cdr:W.Nil in
  let freed = Heap.Subspace.reclaim_subspaces ss ~stack_roots:[ W.Ptr a ] in
  Alcotest.(check int) "rooted space survives" 0 freed;
  Alcotest.(check bool) "cell alive" true (Heap.Store.is_allocated store a)

let test_subspace_cascade () =
  let store, ss = mk_sub ~capacity:32 ~size:4 () in
  (* space 0 points into space 1; nothing points at space 0: freeing
     space 0 must release space 1 on the next fixpoint round *)
  let b = ref (-1) in
  for _ = 1 to 4 do
    b := Heap.Subspace.alloc ss ~car:W.Nil ~cdr:W.Nil
  done;
  (* fill the rest of space 0? a0..a3 are space 0 *)
  let target = Heap.Subspace.alloc ss ~car:W.Nil ~cdr:W.Nil in  (* space 1 *)
  Heap.Subspace.set_car ss !b (W.Ptr target);
  Alcotest.(check int) "space 1 externally referenced" 1
    (Heap.Subspace.subspace_count ss (Heap.Subspace.subspace_of ss target));
  let freed = Heap.Subspace.reclaim_subspaces ss ~stack_roots:[] in
  Alcotest.(check int) "both spaces drained at the fixpoint" 5 freed;
  Alcotest.(check int) "empty" 0 (Heap.Store.live store)

let test_subspace_marking_rebuilds () =
  let store, ss = mk_sub () in
  let a = Heap.Subspace.alloc ss ~car:(W.Int 1) ~cdr:W.Nil in
  ignore (Heap.Subspace.alloc ss ~car:(W.Int 2) ~cdr:W.Nil); (* garbage *)
  let freed = Heap.Subspace.collect ss ~stack_roots:[ W.Ptr a ] in
  Alcotest.(check int) "marking freed the garbage" 1 freed;
  Alcotest.(check bool) "root survives" true (Heap.Store.is_allocated store a)

let () =
  Alcotest.run "gc_extra"
    [ ("small_counts",
       [ Alcotest.test_case "basics" `Quick test_small_basic;
         Alcotest.test_case "saturation" `Quick test_small_saturation;
         Alcotest.test_case "stack flag" `Quick test_small_stack_flag;
         Alcotest.test_case "recovery rate" `Quick test_small_recovery_rate ]);
      ("subspace",
       [ Alcotest.test_case "cross-space counts" `Quick test_subspace_counts;
         Alcotest.test_case "reclaims cycles" `Quick test_subspace_reclaims_cycles;
         Alcotest.test_case "stack roots protect" `Quick test_subspace_stack_roots_protect;
         Alcotest.test_case "cascade" `Quick test_subspace_cascade;
         Alcotest.test_case "marking rebuilds" `Quick test_subspace_marking_rebuilds ]) ]
