(* Tests for the mini-Lisp: values, the three environment strategies,
   interpreter semantics (§4.3.4's subset plus conveniences), prelude
   functions and the tracing instrumentation. *)

module V = Lisp.Value
module D = Sexp.Datum

let d = Alcotest.testable Sexp.pp D.equal

let eval_str ?strategy ?(input = []) src =
  let i = Lisp.Interp.create ?strategy () in
  Lisp.Prelude.load i;
  Lisp.Interp.provide_input i input;
  V.to_datum (Lisp.Interp.run_program i src)

let check_eval ?strategy ?input name expected src =
  Alcotest.check d name (Sexp.parse expected) (eval_str ?strategy ?input src)

(* ---- values ---- *)

let test_value_roundtrip () =
  let x = Sexp.parse "(a (b 1) \"s\" nil)" in
  Alcotest.check d "of/to datum" x (V.to_datum (V.of_datum x))

let test_value_mutation () =
  let v = V.of_datum (Sexp.parse "(a b)") in
  (match v with
   | V.Pair p -> p.V.car <- V.int 9
   | _ -> Alcotest.fail "expected pair");
  Alcotest.check d "rplaca visible" (Sexp.parse "(9 b)") (V.to_datum v)

let test_value_cycle_safe () =
  let v = V.of_datum (Sexp.parse "(a b)") in
  (match v with
   | V.Pair p -> p.V.cdr <- v
   | _ -> assert false);
  (* must not loop *)
  match V.to_datum v with
  | D.Cons (_, D.Sym "<cycle>") -> ()
  | other -> Alcotest.failf "unexpected snapshot %s" (Sexp.to_string other)

let test_value_eq_vs_equal () =
  let a = V.of_datum (Sexp.parse "(1 2)") in
  let b = V.of_datum (Sexp.parse "(1 2)") in
  Alcotest.(check bool) "equal" true (V.equal a b);
  Alcotest.(check bool) "not eq" false (V.eq a b);
  Alcotest.(check bool) "self eq" true (V.eq a a)

(* ---- environments ---- *)

let env_scenario strategy =
  let e = Lisp.Env.create strategy in
  Lisp.Env.define_global e "g" (V.int 1);
  Lisp.Env.enter_frame e;
  Lisp.Env.bind e "x" (V.int 10);
  Lisp.Env.bind e "g" (V.int 2);
  let x_in = Lisp.Env.lookup e "x" in
  let g_shadowed = Lisp.Env.lookup e "g" in
  Lisp.Env.enter_frame e;
  Lisp.Env.bind e "x" (V.int 20);
  let x_deep = Lisp.Env.lookup e "x" in
  Lisp.Env.exit_frame e;
  let x_back = Lisp.Env.lookup e "x" in
  Lisp.Env.exit_frame e;
  let g_restored = Lisp.Env.lookup e "g" in
  let x_gone = Lisp.Env.lookup_opt e "x" in
  (x_in, g_shadowed, x_deep, x_back, g_restored, x_gone)

let test_env_strategy strategy () =
  let x_in, g_sh, x_deep, x_back, g_res, x_gone = env_scenario strategy in
  Alcotest.(check bool) "x bound" true (V.equal x_in (V.int 10));
  Alcotest.(check bool) "g shadowed" true (V.equal g_sh (V.int 2));
  Alcotest.(check bool) "x rebound deeper" true (V.equal x_deep (V.int 20));
  Alcotest.(check bool) "x restored on exit" true (V.equal x_back (V.int 10));
  Alcotest.(check bool) "g restored at top" true (V.equal g_res (V.int 1));
  Alcotest.(check bool) "x unbound at top" true (x_gone = None)

let test_env_setq_semantics () =
  List.iter
    (fun strategy ->
       let e = Lisp.Env.create strategy in
       Lisp.Env.enter_frame e;
       Lisp.Env.bind e "x" (V.int 1);
       Lisp.Env.set e "x" (V.int 5);
       Alcotest.(check bool) "setq updates binding" true
         (V.equal (Lisp.Env.lookup e "x") (V.int 5));
       Lisp.Env.set e "fresh" (V.int 9);
       Lisp.Env.exit_frame e;
       Alcotest.(check bool) "setq of unbound name creates a global" true
         (V.equal (Lisp.Env.lookup e "fresh") (V.int 9)))
    [ Lisp.Env.Deep; Lisp.Env.Shallow; Lisp.Env.Value_cache ]

let test_env_lookup_costs () =
  (* Deep binding pays per-depth probes; shallow is O(1); the value cache
     turns repeated lookups into hits (§2.3.2). *)
  let depth = 30 in
  let probe strategy =
    let e = Lisp.Env.create strategy in
    Lisp.Env.define_global e "target" (V.int 1);
    for i = 1 to depth do
      Lisp.Env.enter_frame e;
      Lisp.Env.bind e (Printf.sprintf "v%d" i) (V.int i)
    done;
    for _ = 1 to 10 do
      ignore (Lisp.Env.lookup e "target")
    done;
    Lisp.Env.counters e
  in
  let deep = probe Lisp.Env.Deep in
  let shallow = probe Lisp.Env.Shallow in
  let cached = probe Lisp.Env.Value_cache in
  Alcotest.(check bool) "deep pays the a-list walk" true
    (deep.Lisp.Env.probes > 10 * depth);
  Alcotest.(check int) "shallow lookup is one probe each" 10 shallow.Lisp.Env.probes;
  Alcotest.(check int) "value cache: 9 of 10 lookups hit" 9 cached.Lisp.Env.cache_hits;
  Alcotest.(check bool) "value cache beats plain deep" true
    (cached.Lisp.Env.probes < deep.Lisp.Env.probes)

let test_value_cache_invalidation () =
  let e = Lisp.Env.create Lisp.Env.Value_cache in
  Lisp.Env.define_global e "x" (V.int 1);
  ignore (Lisp.Env.lookup e "x");           (* cached *)
  Lisp.Env.enter_frame e;
  Lisp.Env.bind e "x" (V.int 2);            (* must invalidate *)
  Alcotest.(check bool) "sees the new binding" true
    (V.equal (Lisp.Env.lookup e "x") (V.int 2));
  Lisp.Env.exit_frame e;                    (* frame-exit invalidation *)
  Alcotest.(check bool) "sees the restored binding" true
    (V.equal (Lisp.Env.lookup e "x") (V.int 1))

(* ---- interpreter ---- *)

let test_arith () =
  check_eval "add" "7" "(+ 3 4)";
  check_eval "nested" "14" "(* 2 (+ 3 4))";
  check_eval "sub1/add1" "5" "(add1 (sub1 5))";
  check_eval "remainder" "2" "(remainder 17 5)";
  check_eval "comparison" "t" "(greaterp 5 3)";
  check_eval "equality" "t" "(= 4 4)"

let test_lists () =
  check_eval "car" "a" "(car (quote (a b c)))";
  check_eval "cdr" "(b c)" "(cdr (quote (a b c)))";
  check_eval "cons" "(a b)" "(cons (quote a) (quote (b)))";
  check_eval "car of nil" "nil" "(car nil)";
  check_eval "rplaca" "(z b)" "(prog (x) (setq x (list2 (quote a) (quote b))) (rplaca x (quote z)) (return x))";
  check_eval "rplacd" "(a . 5)" "(prog (x) (setq x (cons (quote a) (quote b))) (rplacd x 5) (return x))"

let test_cond_and_logic () =
  check_eval "cond first" "1" "(cond (t 1) (t 2))";
  check_eval "cond fallthrough" "2" "(cond (nil 1) (t 2))";
  check_eval "cond empty" "nil" "(cond (nil 1))";
  check_eval "cond test value" "5" "(cond (5))";
  check_eval "and short-circuit" "nil" "(and nil (car 5))";
  check_eval "or value" "7" "(or nil 7 9)";
  check_eval "not" "t" "(not nil)"

let test_prog () =
  check_eval "loop with go" "120"
    "(prog (n acc) (setq n 5) (setq acc 1) loop (cond ((zerop n) (return acc))) (setq acc (* acc n)) (setq n (- n 1)) (go loop))";
  check_eval "locals start nil" "t" "(prog (x) (return (null x)))";
  check_eval "fallthrough returns nil" "nil" "(prog (x) (setq x 5))";
  check_eval "nested prog return is local" "inner-done"
    "(prog (x) (setq x (prog (y) (return (quote inner-done)))) (return x))"

let test_functions () =
  check_eval "recursion" "3628800"
    "(def fact (lambda (x) (cond ((= x 0) 1) (t (* x (fact (- x 1))))))) (fact 10)";
  check_eval "mutual recursion" "t"
    "(def even (lambda (n) (cond ((zerop n) t) (t (odd (sub1 n))))))
     (def odd (lambda (n) (cond ((zerop n) nil) (t (even (sub1 n))))))
     (even 10)";
  check_eval "dynamic scope" "7"
    "(def getx (lambda () x)) (def callit (lambda (x) (getx))) (callit 7)";
  check_eval "lambda as argument" "(2 3 4)"
    "(mapcar (lambda (n) (add1 n)) (quote (1 2 3)))";
  check_eval "immediate lambda" "9" "((lambda (x) (* x x)) 3)"

let test_errors () =
  let expect_error src =
    match eval_str src with
    | exception Lisp.Interp.Error _ -> ()
    | v -> Alcotest.failf "%s: expected error, got %s" src (Sexp.to_string v)
  in
  expect_error "(car 5)";
  expect_error "(+ 1 (quote a))";
  expect_error "(undefined-fn 1)";
  expect_error "unbound-var";
  expect_error "(fact)";  (* undefined here *)
  expect_error "(/ 1 0)";
  expect_error "(def f (lambda (x) x)) (f 1 2)"

let test_io () =
  check_eval ~input:[ Sexp.parse "(a b)"; Sexp.parse "(c)" ] "read twice" "(a b c)"
    "(append (read) (read))";
  check_eval "read exhausted" "nil" "(read)";
  let i = Lisp.Interp.create () in
  ignore (Lisp.Interp.run_program i "(write (cons 1 nil)) (write 2)");
  Alcotest.(check (list (Alcotest.testable Sexp.pp D.equal))) "output collected"
    [ Sexp.parse "(1)"; Sexp.parse "2" ] (Lisp.Interp.output i)

let test_prelude () =
  check_eval "length" "4" "(length (quote (a b c d)))";
  check_eval "append" "(1 2 3 4)" "(append (quote (1 2)) (quote (3 4)))";
  check_eval "reverse" "(c b a)" "(reverse (quote (a b c)))";
  check_eval "assoc" "(b . 2)" "(assoc (quote b) (quote ((a . 1) (b . 2))))";
  check_eval "member" "(c d)" "(member (quote c) (quote (a b c d)))";
  check_eval "member miss" "nil" "(member (quote z) (quote (a b)))";
  check_eval "nth" "c" "(nth 2 (quote (a b c d)))";
  check_eval "last" "(d)" "(last (quote (a b c d)))";
  check_eval "copy" "(a (b c))" "(copy (quote (a (b c))))";
  check_eval "subst" "(x (x y))" "(subst (quote x) (quote a) (quote (a (a y))))";
  check_eval "filter" "(2 4)"
    "(filter (lambda (n) (zerop (remainder n 2))) (quote (1 2 3 4 5)))";
  check_eval "nconc" "(1 2 3)" "(nconc (list2 1 2) (cons 3 nil))"

let test_strategies_agree () =
  let src =
    "(def f (lambda (x y) (cond ((zerop x) y) (t (f (sub1 x) (cons x y))))))
     (f 5 nil)"
  in
  let results =
    List.map (fun s -> eval_str ~strategy:s src)
      [ Lisp.Env.Deep; Lisp.Env.Shallow; Lisp.Env.Value_cache ]
  in
  match results with
  | [ a; b; c ] ->
    Alcotest.check d "deep = shallow" a b;
    Alcotest.check d "deep = value-cache" a c;
    Alcotest.check d "value" (Sexp.parse "(1 2 3 4 5)") a
  | _ -> assert false

let test_funarg () =
  (* the classic upward funarg: (function ...) captures the referencing
     context at creation; a plain lambda stays dynamically scoped *)
  let captured =
    "(def make-adder (lambda (x) (function (lambda (y) (+ x y)))))
     (def apply-it (lambda (f x) (funcall f 10)))
     (apply-it (make-adder 5) 99)"
  in
  let dynamic =
    "(def make-adder (lambda (x) (lambda (y) (+ x y))))
     (def apply-it (lambda (f x) (f 10)))
     (apply-it (make-adder 5) 99)"
  in
  List.iter
    (fun strategy ->
       Alcotest.check d "funarg sees the captured x" (D.Int 15)
         (eval_str ~strategy captured))
    [ Lisp.Env.Deep; Lisp.Env.Shallow; Lisp.Env.Value_cache ];
  Alcotest.check d "plain lambda sees the caller's x" (D.Int 109) (eval_str dynamic)

let test_funarg_by_name () =
  check_eval "function over a defined name" "7"
    "(def seven (lambda () 7))
     (def call (lambda (f) (funcall f)))
     (call (function seven))"

let test_funarg_env_restored () =
  (* applying a funarg must not disturb the caller's environment *)
  check_eval "environment restored after funarg application" "(99 15)"
    "(def make-adder (lambda (x) (function (lambda (y) (+ x y)))))
     (def apply-it (lambda (f x) (list2 x (funcall f 10))))
     (apply-it (make-adder 5) 99)"

(* ---- tracing ---- *)

let test_tracing_events () =
  let cap = Lisp.Tracer.trace_program "(cdr (quote (a b c)))" in
  let events = Trace.Capture.events cap in
  Alcotest.(check int) "one event" 1 (Array.length events);
  match events.(0) with
  | Trace.Event.Prim { prim = Trace.Event.Cdr; args; result } ->
    Alcotest.check d "arg recorded" (Sexp.parse "(a b c)") (List.hd args);
    Alcotest.check d "result recorded" (Sexp.parse "(b c)") result
  | _ -> Alcotest.fail "expected a cdr event"

let test_tracing_calls () =
  let cap =
    Lisp.Tracer.trace_program
      "(def g (lambda (x) (car x))) (def f (lambda (x) (g (cdr x)))) (f (quote (a b)))"
  in
  let st = Trace.Capture.stats cap in
  Alcotest.(check int) "two calls" 2 st.Trace.Capture.functions;
  Alcotest.(check int) "two prims" 2 st.Trace.Capture.primitives;
  Alcotest.(check int) "nested depth" 2 st.Trace.Capture.max_depth

let test_prelude_not_traced () =
  (* loading the prelude must not contribute events *)
  let i = Lisp.Interp.create () in
  Lisp.Prelude.load i;
  let cap = Lisp.Tracer.attach i in
  Alcotest.(check int) "no events before running" 0 (Trace.Capture.length cap)

(* ---- property tests ---- *)

let gen_list =
  QCheck.Gen.(
    let atom =
      oneof
        [ map (fun n -> D.Int n) (int_range 0 99);
          map (fun i -> D.Sym (Printf.sprintf "a%d" i)) (int_range 0 20) ]
    in
    let rec go depth =
      if depth = 0 then atom
      else
        frequency
          [ (3, atom);
            (2, int_range 0 4 >>= fun len -> map D.list (list_repeat len (go (depth - 1)))) ]
    in
    int_range 0 5 >>= fun len -> map D.list (list_repeat len (go 3)))

let arb_list = QCheck.make ~print:Sexp.to_string gen_list

let prop_value_roundtrip =
  QCheck.Test.make ~name:"value of/to datum round-trip" ~count:200 arb_list (fun x ->
      D.equal x (V.to_datum (V.of_datum x)))

let prop_interp_reverse_involution =
  QCheck.Test.make ~name:"interpreted (reverse (reverse l)) = l" ~count:40 arb_list
    (fun x ->
      let i = Lisp.Interp.create () in
      Lisp.Prelude.load i;
      Lisp.Interp.provide_input i [ x ];
      let r = Lisp.Interp.run_program i "(reverse (reverse (read)))" in
      D.equal x (V.to_datum r))

let prop_interp_append_length =
  QCheck.Test.make ~name:"interpreted length (append a b)" ~count:40
    (QCheck.pair arb_list arb_list) (fun (a, b) ->
      let i = Lisp.Interp.create () in
      Lisp.Prelude.load i;
      Lisp.Interp.provide_input i [ a; b ];
      let r = Lisp.Interp.run_program i "(length (append (read) (read)))" in
      V.to_datum r = D.Int (D.length a + D.length b))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_value_roundtrip; prop_interp_reverse_involution; prop_interp_append_length ]

let () =
  Alcotest.run "lisp"
    [ ("value",
       [ Alcotest.test_case "roundtrip" `Quick test_value_roundtrip;
         Alcotest.test_case "mutation" `Quick test_value_mutation;
         Alcotest.test_case "cycle-safe snapshot" `Quick test_value_cycle_safe;
         Alcotest.test_case "eq vs equal" `Quick test_value_eq_vs_equal ]);
      ("env",
       [ Alcotest.test_case "deep" `Quick (test_env_strategy Lisp.Env.Deep);
         Alcotest.test_case "shallow" `Quick (test_env_strategy Lisp.Env.Shallow);
         Alcotest.test_case "value-cache" `Quick (test_env_strategy Lisp.Env.Value_cache);
         Alcotest.test_case "setq" `Quick test_env_setq_semantics;
         Alcotest.test_case "lookup costs" `Quick test_env_lookup_costs;
         Alcotest.test_case "cache invalidation" `Quick test_value_cache_invalidation ]);
      ("interp",
       [ Alcotest.test_case "arithmetic" `Quick test_arith;
         Alcotest.test_case "lists" `Quick test_lists;
         Alcotest.test_case "cond/logic" `Quick test_cond_and_logic;
         Alcotest.test_case "prog" `Quick test_prog;
         Alcotest.test_case "functions" `Quick test_functions;
         Alcotest.test_case "errors" `Quick test_errors;
         Alcotest.test_case "io" `Quick test_io;
         Alcotest.test_case "prelude" `Quick test_prelude;
         Alcotest.test_case "strategies agree" `Quick test_strategies_agree;
         Alcotest.test_case "funargs" `Quick test_funarg;
         Alcotest.test_case "funarg by name" `Quick test_funarg_by_name;
         Alcotest.test_case "funarg restores env" `Quick test_funarg_env_restored ]);
      ("tracing",
       [ Alcotest.test_case "events" `Quick test_tracing_events;
         Alcotest.test_case "calls" `Quick test_tracing_calls;
         Alcotest.test_case "prelude untraced" `Quick test_prelude_not_traced ]);
      ("properties", props) ]
