(* Tests for the fully associative LRU data cache of §5.2.5. *)

let test_hit_miss () =
  let c = Cache.Lru_cache.create ~lines:2 ~line_size:1 in
  Alcotest.(check bool) "cold miss" false (Cache.Lru_cache.access c 10);
  Alcotest.(check bool) "hit" true (Cache.Lru_cache.access c 10);
  Alcotest.(check bool) "second line" false (Cache.Lru_cache.access c 20);
  Alcotest.(check bool) "both resident" true (Cache.Lru_cache.access c 20);
  Alcotest.(check int) "hits" 2 (Cache.Lru_cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.Lru_cache.misses c)

let test_lru_eviction () =
  let c = Cache.Lru_cache.create ~lines:2 ~line_size:1 in
  ignore (Cache.Lru_cache.access c 1);
  ignore (Cache.Lru_cache.access c 2);
  ignore (Cache.Lru_cache.access c 1);      (* 1 is now MRU *)
  ignore (Cache.Lru_cache.access c 3);      (* evicts 2, the LRU *)
  Alcotest.(check bool) "1 survived" true (Cache.Lru_cache.mem c 1);
  Alcotest.(check bool) "2 evicted" false (Cache.Lru_cache.mem c 2);
  Alcotest.(check bool) "3 resident" true (Cache.Lru_cache.mem c 3)

let test_line_prefetch () =
  (* a 4-cell line makes neighbouring addresses hit after one miss *)
  let c = Cache.Lru_cache.create ~lines:4 ~line_size:4 in
  Alcotest.(check bool) "miss at 8" false (Cache.Lru_cache.access c 8);
  Alcotest.(check bool) "hit at 9 (same line)" true (Cache.Lru_cache.access c 9);
  Alcotest.(check bool) "hit at 11" true (Cache.Lru_cache.access c 11);
  Alcotest.(check bool) "miss at 12 (next line)" false (Cache.Lru_cache.access c 12)

let test_negative_addresses () =
  let c = Cache.Lru_cache.create ~lines:4 ~line_size:4 in
  ignore (Cache.Lru_cache.access c (-1));
  Alcotest.(check bool) "-1 and -4 share a line" true (Cache.Lru_cache.mem c (-4));
  Alcotest.(check bool) "-5 is another line" false (Cache.Lru_cache.mem c (-5));
  Alcotest.(check bool) "0 is another line" false (Cache.Lru_cache.mem c 0)

let test_occupancy_bound () =
  let c = Cache.Lru_cache.create ~lines:8 ~line_size:2 in
  for i = 0 to 99 do
    ignore (Cache.Lru_cache.access c (i * 2))
  done;
  Alcotest.(check int) "never above capacity" 8 (Cache.Lru_cache.occupancy c)

let test_sequential_vs_random () =
  (* spatial locality pays off only with multi-cell lines *)
  let run ~line_size ~stride =
    let c = Cache.Lru_cache.create ~lines:16 ~line_size in
    for i = 0 to 499 do
      ignore (Cache.Lru_cache.access c (i * stride mod 4096))
    done;
    Cache.Lru_cache.hit_rate c
  in
  Alcotest.(check bool) "wide lines help sequential streams" true
    (run ~line_size:8 ~stride:1 > run ~line_size:1 ~stride:1 +. 0.5);
  Alcotest.(check bool) "wide lines useless at large stride" true
    (Float.abs (run ~line_size:8 ~stride:64 -. run ~line_size:1 ~stride:64) < 0.05)

(* reference model: naive list-based LRU over lines *)
let prop_matches_reference =
  QCheck.Test.make ~name:"cache = naive LRU reference" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 80) (0 -- 40)) (1 -- 4))
    (fun (addrs, line_size) ->
      let lines = 4 in
      let c = Cache.Lru_cache.create ~lines ~line_size in
      let model = ref [] in
      List.for_all
        (fun addr ->
           let tag = addr / line_size in
           let model_hit = List.mem tag !model in
           model := tag :: List.filter (fun t -> t <> tag) !model;
           if List.length !model > lines then
             model := List.filteri (fun i _ -> i < lines) !model;
           Cache.Lru_cache.access c addr = model_hit)
        addrs)

let () =
  Alcotest.run "cache"
    [ ("lru_cache",
       [ Alcotest.test_case "hit/miss" `Quick test_hit_miss;
         Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
         Alcotest.test_case "line prefetch" `Quick test_line_prefetch;
         Alcotest.test_case "negative addresses" `Quick test_negative_addresses;
         Alcotest.test_case "occupancy bound" `Quick test_occupancy_bound;
         Alcotest.test_case "sequential vs random" `Quick test_sequential_vs_random ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_matches_reference ]) ]
