(* Tests for the SMALL stack machine: compiler output shape (Fig 4.14),
   emulator semantics, agreement with the interpreter on closed programs,
   and EP-LP interaction of compiled code. *)

module D = Sexp.Datum

let d = Alcotest.testable Sexp.pp D.equal

let run_machine ?input src =
  let prog = Machine.Compile.parse_and_compile src in
  let em = Machine.Emulator.create ?input prog in
  match Machine.Emulator.run em with
  | Some v -> (Machine.Emulator.datum_of em v, Machine.Emulator.output em, em)
  | None -> (D.Nil, Machine.Emulator.output em, em)

let check_result ?input name expected src =
  let result, _, _ = run_machine ?input src in
  Alcotest.check d name (Sexp.parse expected) result

(* ---- Fig 4.14: factorial ---- *)

let fact_src =
  "(def fact (lambda (x) (cond ((= x 0) 1) (t (* x (fact (- x 1))))))) (fact 10)"

let test_factorial () = check_result "fact 10" "3628800" fact_src

let test_factorial_code_shape () =
  (* the compiled prologue and test should follow Fig 4.14: BINDN, pushes,
     then a fused NEQUALP branch *)
  let prog = Machine.Compile.parse_and_compile fact_src in
  match List.assoc_opt "fact" prog.Machine.Isa.fns with
  | None -> Alcotest.fail "fact not compiled"
  | Some fn ->
    (match Array.to_list fn.Machine.Isa.code with
     | Machine.Isa.BINDN "x" :: Machine.Isa.PUSHVAR 0
       :: Machine.Isa.PUSHCONST (D.Int 0) :: Machine.Isa.NEQUALP _ :: _ -> ()
     | _ ->
       Alcotest.failf "unexpected prologue:\n%s"
         (Machine.Isa.disassemble fn.Machine.Isa.code))

(* ---- Fig 4.15: list manipulation and function calling ---- *)

let test_fig_4_15 () =
  let result, output, _ =
    run_machine ~input:[ Sexp.parse "(a b c d e)" ]
      {|(def prnt (lambda (junk) (write (cdr junk))))
        (def doit (lambda ()
          (prog (lst)
            (setq lst (read))
            (prnt lst)
            (setq lst (cdr (cdr lst)))
            (return lst))))
        (doit)|}
  in
  Alcotest.check d "doit result" (Sexp.parse "(c d e)") result;
  Alcotest.(check (list d)) "prnt output" [ Sexp.parse "(b c d e)" ] output

(* ---- semantics ---- *)

let test_basics () =
  check_result "arith" "14" "(* 2 (+ 3 4))";
  check_result "car" "a" "(car (quote (a b)))";
  check_result "cons" "(1 2)" "(cons 1 (quote (2)))";
  check_result "cond" "two" "(cond ((= 1 2) (quote one)) (t (quote two)))";
  check_result "and" "nil" "(and t nil)";
  check_result "or" "t" "(or nil 5)";
  check_result "equal on lists" "t" "(equal (quote (a (b))) (quote (a (b))))";
  check_result "setq value" "5" "(prog (x) (setq x 5) (return x))";
  check_result "greaterp" "t" "(greaterp 7 3)";
  check_result "zerop" "t" "(zerop 0)"

let test_prog_loop () =
  check_result "iterative factorial" "120"
    "(prog (n acc) (setq n 5) (setq acc 1) loop (cond ((zerop n) (return acc))) (setq acc (* acc n)) (setq n (- n 1)) (go loop))"

let test_rplac () =
  check_result "rplaca" "(9 b)"
    "(prog (x) (setq x (quote (a b))) (rplaca x 9) (return x))";
  check_result "rplacd" "(a . 9)"
    "(prog (x) (setq x (quote (a b))) (rplacd x 9) (return x))"

let test_dynamic_lookup () =
  (* free names resolve dynamically (LOOKUP) *)
  check_result "dynamic scope" "7"
    "(def getx (lambda () x)) (def callit (lambda (x) (getx))) (callit 7)"

let test_machine_errors () =
  let expect_error src =
    let prog = Machine.Compile.parse_and_compile src in
    let em = Machine.Emulator.create prog in
    match Machine.Emulator.run em with
    | exception Machine.Emulator.Runtime_error _ -> ()
    | _ -> Alcotest.failf "%s: expected runtime error" src
  in
  expect_error "(car 5)";
  expect_error "(+ 1 (quote a))";
  expect_error "(undefined 3)";
  expect_error "(/ 1 0)"

let test_compile_errors () =
  let expect_error src =
    match Machine.Compile.parse_and_compile src with
    | exception Machine.Compile.Error _ -> ()
    | _ -> Alcotest.failf "%s: expected compile error" src
  in
  expect_error "(def f 5)";
  expect_error "((1 2) 3)"

(* ---- agreement with the interpreter ---- *)

let agreement_programs =
  [ fact_src;
    "(def fib (lambda (n) (cond ((lessp n 2) n) (t (+ (fib (- n 1)) (fib (- n 2))))))) (fib 12)";
    "(def len (lambda (l) (cond ((null l) 0) (t (add1 (len (cdr l))))))) (len (quote (a b c d e)))";
    "(def app (lambda (a b) (cond ((null a) b) (t (cons (car a) (app (cdr a) b)))))) (app (quote (1 2)) (quote (3 4)))";
    "(def rev (lambda (l acc) (cond ((null l) acc) (t (rev (cdr l) (cons (car l) acc)))))) (rev (quote (a b c)) nil)";
    "(prog (n acc) (setq n 10) (setq acc 0) loop (cond ((zerop n) (return acc))) (setq acc (+ acc n)) (setq n (sub1 n)) (go loop))";
    "(cons (car (quote ((x) y))) (cdr (quote (p q r))))" ]

let test_agreement () =
  List.iter
    (fun src ->
       let interp = Lisp.Interp.create () in
       let expected = Lisp.Value.to_datum (Lisp.Interp.run_program interp src) in
       let got, _, _ = run_machine src in
       Alcotest.check d (String.sub src 0 (min 40 (String.length src))) expected got)
    agreement_programs

(* ---- EP-LP interaction ---- *)

let test_lpt_traffic () =
  let _, _, em =
    run_machine "(cdr (cdr (quote (a b c d))))"
  in
  let c = Machine.Emulator.lpt_counters em in
  (* quoted list read in, then two cdr requests: both split (misses) *)
  Alcotest.(check int) "two misses" 2 c.Core.Lpt.misses;
  Alcotest.(check bool) "entries allocated" true (c.Core.Lpt.gets >= 5)

let test_refcount_balance () =
  (* entries must be reclaimed as bindings disappear: a recursive walk
     over a long list completes inside a tiny LPT only if table space is
     recycled (reference counting + lazy child decrement under reuse) *)
  let items = String.concat " " (List.init 40 string_of_int) in
  (* iterative walk: each (setq l (cdr l)) releases the previous tail, so
     a tiny table suffices; a recursive walk would rightly overflow, since
     every frame pins its tail *)
  let prog =
    Machine.Compile.parse_and_compile
      (Printf.sprintf
         "(prog (l n) (setq l (quote (%s))) (setq n 0) loop (cond ((null l) (return n))) (setq n (add1 n)) (setq l (cdr l)) (go loop))"
         items)
  in
  let em = Machine.Emulator.create ~lpt_size:24 prog in
  (match Machine.Emulator.run em with
   | Some v -> Alcotest.check d "result" (D.Int 40) (Machine.Emulator.datum_of em v)
   | None -> Alcotest.fail "no result");
  let c = Machine.Emulator.lpt_counters em in
  Alcotest.(check bool) "entries were recycled" true
    (c.Core.Lpt.gets > 24 && c.Core.Lpt.frees > 0)

let test_compiled_workloads () =
  (* whole benchmark programs (prelude included) compiled onto the SMALL
     machine must compute exactly what the interpreter computes — the
     strongest end-to-end check of the ISA, compiler, emulator and LP.
     (plagen and lyra use lambda-valued arguments, beyond the compiled
     subset.) *)
  List.iter
    (fun name ->
       let w = Option.get (Workloads.Registry.find name) in
       let src = Lisp.Prelude.source ^ "\n" ^ w.Workloads.Registry.source in
       let prog = Machine.Compile.parse_and_compile src in
       let em =
         Machine.Emulator.create ~lpt_size:16384 ~input:w.Workloads.Registry.input prog
       in
       let compiled =
         match Machine.Emulator.run em with
         | Some v -> Machine.Emulator.datum_of em v
         | None -> D.Nil
       in
       let interp = Lisp.Interp.create () in
       Lisp.Prelude.load interp;
       Lisp.Interp.provide_input interp w.Workloads.Registry.input;
       let expected =
         Lisp.Value.to_datum (Lisp.Interp.run_program interp w.Workloads.Registry.source)
       in
       Alcotest.check d (name ^ " result") expected compiled;
       Alcotest.(check (list d)) (name ^ " outputs") (Lisp.Interp.output interp)
         (Machine.Emulator.output em);
       (* the machine really worked its heap *)
       let c = Machine.Emulator.lpt_counters em in
       Alcotest.(check bool) (name ^ " LP activity") true
         (c.Core.Lpt.gets > 50 && c.Core.Lpt.refops > 100))
    [ "pearl"; "editor" ]

let prop_machine_interp_agree_on_arith =
  QCheck.Test.make ~name:"machine = interpreter on arithmetic trees" ~count:60
    QCheck.(pair (int_range 1 20) (int_range 1 20))
    (fun (a, b) ->
      let src =
        Printf.sprintf
          "(+ (* %d (sub1 %d)) (cond ((greaterp %d %d) 100) (t (- %d %d))))" a b a b b a
      in
      let interp = Lisp.Interp.create () in
      let expected = Lisp.Value.to_datum (Lisp.Interp.run_program interp src) in
      let got, _, _ = run_machine src in
      D.equal expected got)

let () =
  Alcotest.run "machine"
    [ ("fig4.14",
       [ Alcotest.test_case "factorial" `Quick test_factorial;
         Alcotest.test_case "code shape" `Quick test_factorial_code_shape ]);
      ("fig4.15", [ Alcotest.test_case "list manipulation" `Quick test_fig_4_15 ]);
      ("semantics",
       [ Alcotest.test_case "basics" `Quick test_basics;
         Alcotest.test_case "prog loop" `Quick test_prog_loop;
         Alcotest.test_case "rplac" `Quick test_rplac;
         Alcotest.test_case "dynamic lookup" `Quick test_dynamic_lookup;
         Alcotest.test_case "runtime errors" `Quick test_machine_errors;
         Alcotest.test_case "compile errors" `Quick test_compile_errors ]);
      ("agreement",
       [ Alcotest.test_case "vs interpreter" `Quick test_agreement;
         Alcotest.test_case "compiled workloads" `Slow test_compiled_workloads;
         QCheck_alcotest.to_alcotest prop_machine_interp_agree_on_arith ]);
      ("ep-lp",
       [ Alcotest.test_case "lpt traffic" `Quick test_lpt_traffic;
         Alcotest.test_case "refcount balance" `Quick test_refcount_balance ]) ]
