(* Tests for the array-backed cell heap: store allocation disciplines,
   mark-sweep, reference counting (eager vs lazy), linearisation and
   pointer statistics. *)

module W = Heap.Word
module D = Sexp.Datum

let d = Alcotest.testable Sexp.pp Sexp.Datum.equal

let gen_list =
  QCheck.Gen.(
    let atom =
      oneof
        [ map (fun n -> D.Int n) (int_range 0 99);
          map (fun i -> D.Sym (Printf.sprintf "a%d" i)) (int_range 0 20) ]
    in
    let rec go depth =
      if depth = 0 then atom
      else
        frequency
          [ (3, atom);
            (2, int_range 0 5 >>= fun len -> map D.list (list_repeat len (go (depth - 1)))) ]
    in
    int_range 0 6 >>= fun len -> map D.list (list_repeat len (go 3)))

let arb_list = QCheck.make ~print:Sexp.to_string gen_list

(* ---- Store ---- *)

let test_store_basics () =
  let s = Heap.Store.create ~capacity:4 in
  let a = Heap.Store.alloc s ~car:(W.Int 1) ~cdr:W.Nil in
  let b = Heap.Store.alloc s ~car:(W.Int 2) ~cdr:(W.Ptr a) in
  Alcotest.(check int) "live" 2 (Heap.Store.live s);
  Alcotest.(check bool) "car b" true (W.equal (Heap.Store.car s b) (W.Int 2));
  Alcotest.(check bool) "cdr b" true (W.equal (Heap.Store.cdr s b) (W.Ptr a));
  Heap.Store.set_car s a (W.Int 9);
  Alcotest.(check bool) "set_car" true (W.equal (Heap.Store.car s a) (W.Int 9));
  Heap.Store.release s a;
  Alcotest.(check int) "live after release" 1 (Heap.Store.live s);
  Alcotest.(check bool) "is_allocated" false (Heap.Store.is_allocated s a)

let test_store_exhaustion () =
  let s = Heap.Store.create ~capacity:2 in
  ignore (Heap.Store.alloc s ~car:W.Nil ~cdr:W.Nil);
  ignore (Heap.Store.alloc s ~car:W.Nil ~cdr:W.Nil);
  Alcotest.check_raises "full" Heap.Store.Out_of_memory (fun () ->
      ignore (Heap.Store.alloc s ~car:W.Nil ~cdr:W.Nil))

let test_store_lifo_reuse () =
  let s = Heap.Store.create ~capacity:8 in
  let a = Heap.Store.alloc s ~car:W.Nil ~cdr:W.Nil in
  let _b = Heap.Store.alloc s ~car:W.Nil ~cdr:W.Nil in
  Heap.Store.release s a;
  let c = Heap.Store.alloc s ~car:W.Nil ~cdr:W.Nil in
  Alcotest.(check int) "LIFO: freed cell reused first" a c

let test_store_fifo_reuse () =
  let s = Heap.Store.create ~capacity:3 in
  Heap.Store.set_discipline s Heap.Store.Fifo;
  let a = Heap.Store.alloc s ~car:W.Nil ~cdr:W.Nil in
  let b = Heap.Store.alloc s ~car:W.Nil ~cdr:W.Nil in
  let c = Heap.Store.alloc s ~car:W.Nil ~cdr:W.Nil in
  Heap.Store.release s b;
  Heap.Store.release s a;
  ignore c;
  let x = Heap.Store.alloc s ~car:W.Nil ~cdr:W.Nil in
  Alcotest.(check int) "FIFO: earliest-freed reused first" b x

let test_store_double_free () =
  let s = Heap.Store.create ~capacity:2 in
  let a = Heap.Store.alloc s ~car:W.Nil ~cdr:W.Nil in
  Heap.Store.release s a;
  Alcotest.check_raises "double free detected"
    (Invalid_argument (Printf.sprintf "Store: access to free cell %d" a))
    (fun () -> Heap.Store.release s a)

(* ---- Mark-sweep ---- *)

let test_marksweep () =
  let s = Heap.Store.create ~capacity:16 in
  let tab = Heap.Symtab.create () in
  let root = Heap.Linearize.store_linear tab s (Sexp.parse "(a (b c) d)") in
  let garbage = Heap.Linearize.store_linear tab s (Sexp.parse "(x y)") in
  ignore garbage;
  let live_before = Heap.Store.live s in
  let { Heap.Marksweep.marked; swept } = Heap.Marksweep.collect s ~roots:[ root ] in
  Alcotest.(check int) "swept the unrooted list" 2 swept;
  Alcotest.(check int) "marked the rooted cells" (live_before - 2) marked;
  (* The rooted structure is intact. *)
  Alcotest.check d "rooted structure survives" (Sexp.parse "(a (b c) d)")
    (Heap.Linearize.read tab s root)

let test_marksweep_cycle () =
  let s = Heap.Store.create ~capacity:8 in
  (* Build a cycle a -> b -> a, unreferenced. *)
  let a = Heap.Store.alloc s ~car:(W.Int 1) ~cdr:W.Nil in
  let b = Heap.Store.alloc s ~car:(W.Int 2) ~cdr:(W.Ptr a) in
  Heap.Store.set_cdr s a (W.Ptr b);
  let { Heap.Marksweep.swept; marked = _ } = Heap.Marksweep.collect s ~roots:[] in
  Alcotest.(check int) "cycles are collected" 2 swept;
  Alcotest.(check int) "nothing live" 0 (Heap.Store.live s)

let prop_marksweep_preserves_reachable =
  QCheck.Test.make ~name:"mark-sweep preserves exactly the reachable structure"
    ~count:100 (QCheck.pair arb_list arb_list) (fun (keep, drop) ->
      let s = Heap.Store.create ~capacity:4096 in
      let tab = Heap.Symtab.create () in
      let root = Heap.Linearize.store_linear tab s keep in
      ignore (Heap.Linearize.store_linear tab s drop);
      let reach = Heap.Marksweep.reachable s ~roots:[ root ] in
      let { Heap.Marksweep.marked; swept = _ } = Heap.Marksweep.collect s ~roots:[ root ] in
      marked = List.length reach
      && Heap.Store.live s = marked
      && D.equal keep (Heap.Linearize.read tab s root))

(* ---- Reference counting ---- *)

let alloc_chain rc k =
  (* Build the list (1 2 ... k) bottom-up; returns the head address.  Each
     cell is allocated with count 1 (our handle); once embedded in its
     parent (which adds its own reference) we drop the handle, leaving
     exactly the structural references plus one handle on the head. *)
  let rec go i tail =
    if i = 0 then tail
    else begin
      let a = Heap.Refcount.alloc rc ~car:(W.Int i) ~cdr:tail in
      (match tail with W.Ptr b -> Heap.Refcount.decr rc b | _ -> ());
      go (i - 1) (W.Ptr a)
    end
  in
  match go k W.Nil with
  | W.Ptr a -> a
  | _ -> assert false

let test_refcount_eager_cascade () =
  let s = Heap.Store.create ~capacity:64 in
  let rc = Heap.Refcount.create s ~policy:Heap.Refcount.Eager in
  let head = alloc_chain rc 10 in
  Alcotest.(check int) "10 live" 10 (Heap.Store.live s);
  Heap.Refcount.decr rc head;
  (* Eager policy: the whole chain is reclaimed at once. *)
  Alcotest.(check int) "all reclaimed" 0 (Heap.Store.live s);
  Alcotest.(check int) "10 reclaims" 10 (Heap.Refcount.reclaimed rc)

let test_refcount_lazy_defers () =
  let s = Heap.Store.create ~capacity:64 in
  let rc = Heap.Refcount.create s ~policy:Heap.Refcount.Lazy in
  let head = alloc_chain rc 10 in
  let ops_before = Heap.Refcount.refops rc in
  Heap.Refcount.decr rc head;
  (* Lazy policy: O(1) work now; only the head is logically reclaimed. *)
  Alcotest.(check int) "one refop" 1 (Heap.Refcount.refops rc - ops_before);
  Alcotest.(check int) "one reclaim so far" 1 (Heap.Refcount.reclaimed rc);
  (* Reusing cells drains the chain one deferred decrement at a time. *)
  for _ = 1 to 10 do
    ignore (Heap.Refcount.alloc rc ~car:(W.Int 0) ~cdr:W.Nil)
  done;
  Alcotest.(check int) "chain fully reclaimed through reuse" 10
    (Heap.Refcount.reclaimed rc)

let test_refcount_rplac () =
  let s = Heap.Store.create ~capacity:64 in
  let rc = Heap.Refcount.create s ~policy:Heap.Refcount.Eager in
  let a = Heap.Refcount.alloc rc ~car:(W.Int 1) ~cdr:W.Nil in
  let b = Heap.Refcount.alloc rc ~car:(W.Int 2) ~cdr:W.Nil in
  let c = Heap.Refcount.alloc rc ~car:(W.Ptr a) ~cdr:(W.Ptr b) in
  Alcotest.(check int) "a has 2 refs" 2 (Heap.Refcount.count rc a);
  (* rplaca c away from a: a's count drops; with our own ref gone it dies. *)
  Heap.Refcount.set_car rc c W.Nil;
  Alcotest.(check int) "a count back to 1" 1 (Heap.Refcount.count rc a);
  Heap.Refcount.decr rc a;
  Alcotest.(check bool) "a is gone" false (Heap.Store.is_allocated s a);
  Alcotest.(check bool) "b survives" true (Heap.Store.is_allocated s b)

let test_refcount_eager_vs_lazy_refops () =
  (* Table 5.2's point: eager recursive decrementing performs strictly more
     refcount operations than the lazy free-stack policy at release time. *)
  let run policy =
    let s = Heap.Store.create ~capacity:256 in
    let rc = Heap.Refcount.create s ~policy in
    let head = alloc_chain rc 50 in
    let before = Heap.Refcount.refops rc in
    Heap.Refcount.decr rc head;
    Heap.Refcount.refops rc - before
  in
  let eager = run Heap.Refcount.Eager and lazy_ = run Heap.Refcount.Lazy in
  Alcotest.(check bool) "eager does more refops at release" true (eager > lazy_);
  Alcotest.(check int) "lazy is O(1)" 1 lazy_

(* ---- Linearize ---- *)

let test_linearize_roundtrip () =
  let s = Heap.Store.create ~capacity:256 in
  let tab = Heap.Symtab.create () in
  let x = Sexp.parse "(a (b (c)) \"s\" 42 (d e f))" in
  let root = Heap.Linearize.store_linear tab s x in
  Alcotest.check d "linear roundtrip" x (Heap.Linearize.read tab s root);
  let root2 = Heap.Linearize.store_naive tab s x in
  Alcotest.check d "naive roundtrip" x (Heap.Linearize.read tab s root2)

let test_linearity_measure () =
  let s = Heap.Store.create ~capacity:256 in
  let tab = Heap.Symtab.create () in
  let x = Sexp.parse "(a b c d e f g h)" in
  let root = Heap.Linearize.store_linear tab s x in
  Alcotest.(check (float 0.001)) "linear allocator: all cdrs at distance 1" 1.0
    (Heap.Linearize.linearity s ~root)

let test_pointer_stats () =
  let s = Heap.Store.create ~capacity:64 in
  let tab = Heap.Symtab.create () in
  let root = Heap.Linearize.store_linear tab s (Sexp.parse "(a (b) c)") in
  let st = Heap.Linearize.pointer_stats s ~root in
  (* 4 cells: 3 spine + 1 sublist. cars: a, Ptr, c, b; cdrs: 2 Ptr + 2 nil. *)
  Alcotest.(check int) "car->atom" 3 st.Heap.Linearize.car_to_atom;
  Alcotest.(check int) "car->list" 1 st.Heap.Linearize.car_to_list;
  Alcotest.(check int) "cdr->list" 2 st.Heap.Linearize.cdr_to_list;
  Alcotest.(check int) "cdr->nil" 2 st.Heap.Linearize.cdr_to_nil

let prop_linearize_roundtrip =
  QCheck.Test.make ~name:"store_linear/read round-trip" ~count:150 arb_list (fun x ->
      let s = Heap.Store.create ~capacity:8192 in
      let tab = Heap.Symtab.create () in
      let root = Heap.Linearize.store_linear tab s x in
      D.equal x (Heap.Linearize.read tab s root))

let prop_store_cell_conservation =
  QCheck.Test.make ~name:"store uses exactly cell_count cells" ~count:150 arb_list
    (fun x ->
      let s = Heap.Store.create ~capacity:8192 in
      let tab = Heap.Symtab.create () in
      ignore (Heap.Linearize.store_linear tab s x);
      Heap.Store.live s = D.cell_count x)

let prop_refcount_counts_are_refs =
  QCheck.Test.make ~name:"refcount = extant pointers + 1 root ref" ~count:100 arb_list
    (fun x ->
      (* After loading a tree through Refcount.alloc, each cell's count must
         equal the number of Ptr words referencing it, plus the allocation
         reference for the root. *)
      let s = Heap.Store.create ~capacity:8192 in
      let rc = Heap.Refcount.create s ~policy:Heap.Refcount.Eager in
      let rec load (d : D.t) : W.t =
        match d with
        | Nil -> W.Nil
        | Int n -> W.Int n
        | Sym _ | Str _ -> W.Sym 0
        | Cons (a, x) ->
          let cdr = load x in
          let car = load a in
          let addr = Heap.Refcount.alloc rc ~car ~cdr in
          (* alloc gave it count 1 (our reference); parent will add one when
             it embeds the pointer, so drop ours unless this is the root. *)
          W.Ptr addr
      in
      let root = load x in
      let incoming = Hashtbl.create 64 in
      let bump a = Hashtbl.replace incoming a (1 + Option.value ~default:0 (Hashtbl.find_opt incoming a)) in
      (match root with W.Ptr a -> bump a | _ -> ());
      Heap.Store.iter_live
        (fun a ->
           (match Heap.Store.car s a with W.Ptr b -> bump b | _ -> ());
           (match Heap.Store.cdr s a with W.Ptr b -> bump b | _ -> ()))
        s;
      let ok = ref true in
      Heap.Store.iter_live
        (fun a ->
           let expect = Option.value ~default:0 (Hashtbl.find_opt incoming a) in
           (* count = incoming pointers + 1 (the alloc-time reference we kept) *)
           if Heap.Refcount.count rc a <> expect + 1 - (match root with W.Ptr r when r = a -> 1 | _ -> 0)
           then ok := false)
        s;
      !ok)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_marksweep_preserves_reachable; prop_linearize_roundtrip;
      prop_store_cell_conservation; prop_refcount_counts_are_refs ]

let () =
  Alcotest.run "heap"
    [ ("store",
       [ Alcotest.test_case "basics" `Quick test_store_basics;
         Alcotest.test_case "exhaustion" `Quick test_store_exhaustion;
         Alcotest.test_case "lifo reuse" `Quick test_store_lifo_reuse;
         Alcotest.test_case "fifo reuse" `Quick test_store_fifo_reuse;
         Alcotest.test_case "double free" `Quick test_store_double_free ]);
      ("marksweep",
       [ Alcotest.test_case "collects garbage" `Quick test_marksweep;
         Alcotest.test_case "collects cycles" `Quick test_marksweep_cycle ]);
      ("refcount",
       [ Alcotest.test_case "eager cascade" `Quick test_refcount_eager_cascade;
         Alcotest.test_case "lazy defers" `Quick test_refcount_lazy_defers;
         Alcotest.test_case "rplaca/rplacd counts" `Quick test_refcount_rplac;
         Alcotest.test_case "eager vs lazy refops" `Quick test_refcount_eager_vs_lazy_refops ]);
      ("linearize",
       [ Alcotest.test_case "roundtrip" `Quick test_linearize_roundtrip;
         Alcotest.test_case "linearity" `Quick test_linearity_measure;
         Alcotest.test_case "pointer stats" `Quick test_pointer_stats ]);
      ("properties", props) ]
