(* Tests for the s-expression substrate: datum operations, reader/printer
   round-trips, the n/p metrics of Fig 3.2 and the tree view of §5.3.1. *)

module D = Sexp.Datum

let d = Alcotest.testable Sexp.pp Sexp.Datum.equal

(* Random generator for s-expressions; [gen_list] draws proper nested
   lists with non-nil atoms (the common domain of all representations). *)
let gen_atom =
  QCheck.Gen.(
    oneof
      [ map (fun n -> D.Int n) (int_range (-999) 999);
        map (fun i -> D.Sym (Printf.sprintf "a%d" i)) (int_range 0 40) ])

let gen_list ~max_depth ~max_len =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then gen_atom
    else
      frequency
        [ (3, gen_atom);
          (2,
           int_range 1 max_len >>= fun len ->
           map D.list (list_repeat len (go (depth - 1)))) ]
  in
  (int_range 1 max_len >>= fun len ->
   map D.list (list_repeat len (go (max_depth - 1))))

let arb_list = QCheck.make ~print:Sexp.to_string (gen_list ~max_depth:4 ~max_len:6)

(* Any datum, including Nil elements, strings and dotted pairs. *)
let gen_any =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ return D.Nil; gen_atom;
        map (fun s -> D.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 5)) ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [ (2, leaf);
          (1, map2 D.cons (go (depth - 1)) (go (depth - 1)));
          (2,
           int_range 0 4 >>= fun len ->
           map D.list (list_repeat len (go (depth - 1)))) ]
  in
  go 4

let arb_any = QCheck.make ~print:Sexp.to_string gen_any

let test_reader_basics () =
  Alcotest.check d "flat list" (D.list [ D.sym "a"; D.sym "b" ]) (Sexp.parse "(a b)");
  Alcotest.check d "nested" (D.list [ D.sym "a"; D.list [ D.int 1; D.int 2 ] ])
    (Sexp.parse "(a (1 2))");
  Alcotest.check d "empty" D.Nil (Sexp.parse "()");
  Alcotest.check d "nil symbol" D.Nil (Sexp.parse "nil");
  Alcotest.check d "dotted" (D.cons (D.sym "a") (D.sym "b")) (Sexp.parse "(a . b)");
  Alcotest.check d "quote sugar" (D.list [ D.sym "quote"; D.sym "x" ]) (Sexp.parse "'x");
  Alcotest.check d "string" (D.str "hi there") (Sexp.parse "\"hi there\"");
  Alcotest.check d "negative int" (D.int (-42)) (Sexp.parse "-42");
  Alcotest.check d "comments" (D.list [ D.sym "a" ]) (Sexp.parse "(a ; comment\n)")

exception Reader_error of string

let test_reader_errors () =
  let bad s =
    Alcotest.check_raises s (Reader_error s) (fun () ->
        try ignore (Sexp.parse s) with Sexp.Reader.Parse_error _ -> raise (Reader_error s))
  in
  bad "("; bad ")"; bad "(a . b c)"; bad "(a b"; bad "\"unterminated"; bad "a b"

let test_parse_many () =
  let ds = Sexp.parse_many "(a) (b c) 42" in
  Alcotest.(check int) "three datums" 3 (List.length ds)

let test_accessors () =
  let l = Sexp.parse "(a b (c d) e)" in
  Alcotest.check d "car" (D.sym "a") (D.car l);
  Alcotest.check d "nth 2" (Sexp.parse "(c d)") (D.nth 2 l);
  Alcotest.(check int) "length" 4 (D.length l);
  Alcotest.(check int) "depth" 2 (D.depth l);
  Alcotest.check d "append"
    (Sexp.parse "(1 2 3 4)")
    (D.append (Sexp.parse "(1 2)") (Sexp.parse "(3 4)"));
  Alcotest.check d "rev" (Sexp.parse "(3 2 1)") (D.rev (Sexp.parse "(1 2 3)"));
  Alcotest.check d "subst"
    (Sexp.parse "(a x (c x))")
    (D.subst ~old_:(D.sym "b") ~new_:(D.sym "x") (Sexp.parse "(a b (c b))"))

let test_metrics_fig_3_2 () =
  (* The two worked examples of Figure 3.2. *)
  let l1 = Sexp.parse "(a b c (d e) f g)" in
  Alcotest.(check (pair int int)) "n,p of (A B C (D E) F G)" (7, 1) (Sexp.Metrics.np l1);
  Alcotest.(check int) "8 two-pointer cells" 8 (Sexp.Metrics.two_pointer_cells l1);
  let l2 = Sexp.parse "(a (b (c (d e) f) g))" in
  Alcotest.(check (pair int int)) "n,p of (A (B (C (D E) F) G))" (7, 3) (Sexp.Metrics.np l2);
  Alcotest.(check int) "10 two-pointer cells" 10 (Sexp.Metrics.two_pointer_cells l2);
  Alcotest.(check int) "7 structure-coded cells" 7 (Sexp.Metrics.structure_coded_cells l2);
  Alcotest.(check bool) "linear" true (Sexp.Metrics.is_linear (Sexp.parse "(a b c)"));
  Alcotest.(check bool) "not linear" false (Sexp.Metrics.is_linear l1)

let test_tree_fig_5_6 () =
  (* The list (((A B) C D) E F G) of Figure 5.6 and §5.3.1's node count:
     n atoms, p internal left parens -> n+p internal nodes, n+p+1 leaves. *)
  let l = Sexp.parse "(((a b) c d) e f g)" in
  let t = Sexp.Tree.of_datum l in
  let n, p = Sexp.Metrics.np l in
  Alcotest.(check int) "internal nodes = n+p" (n + p) (Sexp.Tree.internal_count t);
  Alcotest.(check int) "leaves = n+p+1" (n + p + 1) (Sexp.Tree.leaf_count t);
  Alcotest.(check int) "total = 2n+2p+1" ((2 * n) + (2 * p) + 1) (Sexp.Tree.node_count t);
  (* §5.3.1's traversal super-sequence for this very list. *)
  let expected_touch =
    [ 1; 2; 4; 8; 16; 16; 17; 16; 8; 9; 9; 9; 4; 5; 5; 11; 11; 11; 5; 2; 3; 3;
      7; 7; 15; 15; 15; 7; 3; 1 ]
  in
  (* Leaves once, internals three times; length = 3(n+p) + (n+p+1). *)
  Alcotest.(check int) "touch sequence length"
    ((3 * (n + p)) + n + p + 1)
    (List.length (Sexp.Tree.touch_sequence t));
  ignore expected_touch;
  let misses, hits = Sexp.Tree.traversal_hits_misses t in
  Alcotest.(check int) "misses = n+p" (n + p) misses;
  Alcotest.(check int) "hits = 3n+3p+1" ((3 * n) + (3 * p) + 1) hits

let test_tree_orders () =
  let t = Sexp.Tree.of_datum (Sexp.parse "(a b)") in
  (* Tree: node1 = (leaf a, node3 = (leaf b, leaf nil)). *)
  Alcotest.(check (list int)) "preorder" [ 1; 2; 3; 6; 7 ]
    (Sexp.Tree.visit_sequence Sexp.Tree.Pre t);
  Alcotest.(check (list int)) "inorder" [ 2; 1; 6; 3; 7 ]
    (Sexp.Tree.visit_sequence Sexp.Tree.In t);
  Alcotest.(check (list int)) "postorder" [ 2; 6; 7; 3; 1 ]
    (Sexp.Tree.visit_sequence Sexp.Tree.Post t)

(* Property tests. *)

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip" ~count:300 arb_any (fun x ->
      D.equal x (Sexp.parse (Sexp.to_string x)))

let prop_tree_roundtrip =
  QCheck.Test.make ~name:"tree of_datum/to_datum" ~count:300 arb_any (fun x ->
      D.equal x (Sexp.Tree.to_datum (Sexp.Tree.of_datum x)))

let prop_cells_eq_np =
  QCheck.Test.make ~name:"cell_count = n+p on proper lists" ~count:300 arb_list
    (fun x -> D.cell_count x = Sexp.Metrics.two_pointer_cells x)

let prop_touch_counts =
  QCheck.Test.make ~name:"touch sequence: internals x3, leaves x1" ~count:200 arb_list
    (fun x ->
      let t = Sexp.Tree.of_datum x in
      List.length (Sexp.Tree.touch_sequence t)
      = (3 * Sexp.Tree.internal_count t) + Sexp.Tree.leaf_count t)

let prop_visit_subsequence =
  QCheck.Test.make ~name:"ordered visits are subsequences of touches" ~count:100 arb_list
    (fun x ->
      let t = Sexp.Tree.of_datum x in
      let touch = Sexp.Tree.touch_sequence t in
      let is_subseq sub seq =
        let rec go sub seq =
          match sub, seq with
          | [], _ -> true
          | _, [] -> false
          | s :: sub', t :: seq' -> if s = t then go sub' seq' else go sub seq'
        in
        go sub seq
      in
      List.for_all
        (fun o -> is_subseq (Sexp.Tree.visit_sequence o t) touch)
        [ Sexp.Tree.Pre; Sexp.Tree.In; Sexp.Tree.Post ])

let prop_rev_involution =
  QCheck.Test.make ~name:"rev (rev l) = l" ~count:200 arb_list (fun x ->
      D.equal x (D.rev (D.rev x)))

let prop_append_length =
  QCheck.Test.make ~name:"length (append a b) = length a + length b" ~count:200
    (QCheck.pair arb_list arb_list)
    (fun (a, b) -> D.length (D.append a b) = D.length a + D.length b)

let prop_compare_consistent =
  QCheck.Test.make ~name:"compare consistent with equal" ~count:300
    (QCheck.pair arb_any arb_any)
    (fun (a, b) -> D.equal a b = (D.compare a b = 0))

let props = List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_tree_roundtrip; prop_cells_eq_np; prop_touch_counts;
      prop_visit_subsequence; prop_rev_involution; prop_append_length;
      prop_compare_consistent ]

let () =
  Alcotest.run "sexp"
    [ ("reader",
       [ Alcotest.test_case "basics" `Quick test_reader_basics;
         Alcotest.test_case "errors" `Quick test_reader_errors;
         Alcotest.test_case "parse_many" `Quick test_parse_many ]);
      ("datum", [ Alcotest.test_case "accessors" `Quick test_accessors ]);
      ("metrics", [ Alcotest.test_case "fig 3.2" `Quick test_metrics_fig_3_2 ]);
      ("tree",
       [ Alcotest.test_case "fig 5.6 counts" `Quick test_tree_fig_5_6;
         Alcotest.test_case "traversal orders" `Quick test_tree_orders ]);
      ("properties", props) ]
