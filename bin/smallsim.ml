(* smallsim — command-line front end to the SMALL reproduction.

   Subcommands:
     run       evaluate a mini-Lisp program (file or -e expression)
     compile   compile a program to the SMALL ISA and disassemble/execute
     trace     run a workload (or program) under tracing; save/summarise
     analyze   Chapter 3 analyses over a saved or built-in trace
     simulate  Chapter 5 SMALL simulation over a trace
     serve     run the simulation-job service (smalld)
     submit    send job requests to a running service
     route     front a sharded smalld cluster (consistent-hash router)
     loadgen   zipfian YCSB-style load harness against a cluster
     workloads list the built-in benchmark workloads *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- shared argument definitions ---- *)

let workload_names = List.map (fun w -> w.Workloads.Registry.name) Workloads.Registry.all

let workload_conv =
  Arg.conv
    ( (fun s ->
         match Workloads.Registry.find s with
         | Some w -> Ok w
         | None ->
           Error (`Msg (Printf.sprintf "unknown workload %s (have: %s)" s
                          (String.concat ", " workload_names)))),
      fun ppf w -> Format.pp_print_string ppf w.Workloads.Registry.name )

let trace_source =
  let doc = "Built-in workload to trace (" ^ String.concat "|" workload_names ^ ")." in
  Arg.(value & opt (some workload_conv) None & info [ "w"; "workload" ] ~doc)

let trace_file =
  let doc = "A previously saved trace file." in
  Arg.(value & opt (some file) None & info [ "t"; "trace" ] ~doc)

(* Analysis and simulation need only the preprocessed form; binary trace
   files reach it through the zero-copy mapped source without ever
   materialising events. *)
let load_preprocessed workload file =
  match workload, file with
  | Some w, _ -> Ok (Workloads.Registry.preprocessed w)
  | None, Some path ->
    (match Trace.Io.open_path path with
     | Trace.Io.Binary_source src ->
       (try Ok (Trace.Preprocess.run_source src)
        with Trace.Binary.Corrupt { offset; reason } ->
          raise (Trace.Io.Corrupt { path; offset; reason }))
     | Trace.Io.Sexp_capture c -> Ok (Trace.Preprocess.run c))
  | None, None -> Error (`Msg "need --workload or --trace")

(* ---- run ---- *)

let run_cmd =
  let program =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Program file.")
  in
  let expr =
    Arg.(value & opt (some string) None
         & info [ "e" ] ~docv:"EXPR" ~doc:"Evaluate the given expression instead.")
  in
  let inputs =
    Arg.(value & opt (some file) None
         & info [ "input" ] ~doc:"File of datums served to (read).")
  in
  let strategy =
    Arg.(value & opt (enum [ ("deep", Lisp.Env.Deep); ("shallow", Lisp.Env.Shallow);
                             ("value-cache", Lisp.Env.Value_cache) ])
           Lisp.Env.Deep
         & info [ "binding" ] ~doc:"Environment strategy: deep|shallow|value-cache.")
  in
  let action file expr inputs strategy =
    match file, expr with
    | None, None -> Error (`Msg "need a program file or -e EXPR")
    | _ ->
      let source = match expr with Some e -> e | None -> read_file (Option.get file) in
      let interp = Lisp.Interp.create ~strategy () in
      Lisp.Prelude.load interp;
      (match inputs with
       | Some path -> Lisp.Interp.provide_input interp (Sexp.parse_many (read_file path))
       | None -> ());
      (try
         let v = Lisp.Interp.run_program interp source in
         List.iter (fun d -> print_endline (Sexp.to_string d)) (Lisp.Interp.output interp);
         Printf.printf "=> %s\n" (Lisp.Value.to_string v);
         Ok ()
       with
       | Lisp.Interp.Error msg -> Error (`Msg ("lisp error: " ^ msg))
       | Sexp.Reader.Parse_error msg -> Error (`Msg ("parse error: " ^ msg)))
  in
  let term = Term.(term_result (const action $ program $ expr $ inputs $ strategy)) in
  Cmd.v (Cmd.info "run" ~doc:"Evaluate a mini-Lisp program") term

(* ---- compile ---- *)

let compile_cmd =
  let program =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Program file.")
  in
  let expr =
    Arg.(value & opt (some string) None & info [ "e" ] ~docv:"EXPR" ~doc:"Inline program.")
  in
  let execute =
    Arg.(value & flag & info [ "x"; "execute" ] ~doc:"Run the compiled program too.")
  in
  let inputs =
    Arg.(value & opt (some file) None & info [ "input" ] ~doc:"Datums for RDLIST.")
  in
  let action file expr execute inputs =
    match file, expr with
    | None, None -> Error (`Msg "need a program file or -e EXPR")
    | _ ->
      let source = match expr with Some e -> e | None -> read_file (Option.get file) in
      (try
         let prog = Machine.Compile.parse_and_compile source in
         List.iter
           (fun (name, fn) ->
              Printf.printf "%s:\n%s\n" name (Machine.Isa.disassemble fn.Machine.Isa.code))
           prog.Machine.Isa.fns;
         Printf.printf "main:\n%s" (Machine.Isa.disassemble prog.Machine.Isa.main);
         if execute then begin
           let input =
             match inputs with
             | Some path -> Sexp.parse_many (read_file path)
             | None -> []
           in
           let em = Machine.Emulator.create ~input prog in
           (match Machine.Emulator.run em with
            | Some v ->
              Printf.printf "\n=> %s (%d instructions)\n"
                (Sexp.to_string (Machine.Emulator.datum_of em v))
                (Machine.Emulator.instructions em)
            | None -> print_endline "\n=> (no value)");
           let c = Machine.Emulator.lpt_counters em in
           Printf.printf "LP: %d gets, %d refops, %d hits, %d misses\n" c.Core.Lpt.gets
             c.Core.Lpt.refops c.Core.Lpt.hits c.Core.Lpt.misses
         end;
         Ok ()
       with
       | Machine.Compile.Error msg -> Error (`Msg ("compile error: " ^ msg))
       | Machine.Emulator.Runtime_error msg -> Error (`Msg ("runtime error: " ^ msg))
       | Sexp.Reader.Parse_error msg -> Error (`Msg ("parse error: " ^ msg)))
  in
  let term = Term.(term_result (const action $ program $ expr $ execute $ inputs)) in
  Cmd.v (Cmd.info "compile" ~doc:"Compile to the SMALL instruction set") term

(* ---- trace ---- *)

let trace_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~doc:"Save the trace to this file.")
  in
  let binary =
    Arg.(value & flag
         & info [ "binary" ] ~doc:"Save in the compact binary format (see Trace.Binary).")
  in
  let show_stats =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"Also report unique list objects and the trace digest.")
  in
  let print_mix mix =
    List.iter
      (fun p ->
         Printf.printf "  %-7s %6.2f%%\n" (Trace.Event.prim_name p)
           (Analysis.Prim_mix.pct mix p))
      Trace.Event.all_prims
  in
  let save_to capture out binary =
    match out with
    | Some path ->
      let format = if binary then Trace.Io.Binary else Trace.Io.Sexp_lines in
      Trace.Io.save ~format path capture;
      Printf.printf "saved to %s%s\n" path (if binary then " (binary)" else "")
    | None -> ()
  in
  (* The whole-capture path: workloads and sexp-lines traces. *)
  let summarise_capture capture out binary show_stats =
    let st = Trace.Capture.stats capture in
    Printf.printf "events: %d (%d primitives, %d function calls, max depth %d)\n"
      (Trace.Capture.length capture) st.Trace.Capture.primitives
      st.Trace.Capture.functions st.Trace.Capture.max_depth;
    print_mix (Analysis.Prim_mix.analyze capture);
    if show_stats then begin
      let pre = Trace.Preprocess.run capture in
      Printf.printf "unique list objects: %d\n" pre.Trace.Preprocess.distinct_lists;
      Printf.printf "digest: %s\n" (Trace.Binary.digest capture)
    end;
    save_to capture out binary
  in
  (* Binary trace files summarise off the mapped source: the event
     count comes from the chunk headers alone, the mix and depth from
     the flat batches, and the digest from the raw file bytes (the
     server's cache key for trace files) — no event is materialised
     unless [-o] asks for a re-encode. *)
  let summarise_source path src out binary show_stats =
    let guard f =
      try f ()
      with Trace.Binary.Corrupt { offset; reason } ->
        raise (Trace.Io.Corrupt { path; offset; reason })
    in
    let hs = guard (fun () -> Trace.Binary.header_stats src) in
    let st = guard (fun () -> Trace.Binary.scan_stats src) in
    Printf.printf "events: %d (%d primitives, %d function calls, max depth %d)\n"
      hs.Trace.Binary.h_events st.Trace.Capture.primitives
      st.Trace.Capture.functions st.Trace.Capture.max_depth;
    Printf.printf "binary v%d: %d chunks, %d bytes (%d payload)%s\n"
      hs.Trace.Binary.h_version hs.Trace.Binary.h_chunks hs.Trace.Binary.h_bytes
      hs.Trace.Binary.h_payload_bytes
      (if Trace.Binary.source_mapped src then ", mmapped" else "");
    print_mix (guard (fun () -> Analysis.Prim_mix.analyze_source src));
    if show_stats then begin
      let pre = guard (fun () -> Trace.Preprocess.run_source src) in
      Printf.printf "unique list objects: %d\n" pre.Trace.Preprocess.distinct_lists;
      Printf.printf "digest: %s\n" (Digest.to_hex (Digest.file path))
    end;
    if out <> None then
      save_to (guard (fun () -> Trace.Binary.capture_of_source src)) out binary
  in
  let action workload file out binary show_stats =
    match workload, file with
    | None, None -> Error (`Msg "need --workload or --trace")
    | Some w, _ ->
      summarise_capture (Workloads.Registry.trace w) out binary show_stats;
      Ok ()
    | None, Some path ->
      (match Trace.Io.open_path path with
       | Trace.Io.Sexp_capture capture ->
         summarise_capture capture out binary show_stats
       | Trace.Io.Binary_source src ->
         summarise_source path src out binary show_stats);
      Ok ()
  in
  let term =
    Term.(term_result
            (const action $ trace_source $ trace_file $ out $ binary $ show_stats))
  in
  Cmd.v (Cmd.info "trace" ~doc:"Capture or summarise a list-primitive trace") term

(* ---- analyze ---- *)

let analyze_cmd =
  let separation =
    Arg.(value & opt float 0.10
         & info [ "separation" ] ~doc:"List-set separation constraint (fraction).")
  in
  let action workload file separation =
    match load_preprocessed workload file with
    | Error _ as e -> e
    | Ok pre ->
      let np = Analysis.Np_stats.analyze pre in
      Printf.printf "lists: %d distinct; mean n = %.2f, mean p = %.2f\n"
        pre.Trace.Preprocess.distinct_lists (Analysis.Np_stats.mean_n np)
        (Analysis.Np_stats.mean_p np);
      let sets = Analysis.List_sets.partition ~separation pre in
      Printf.printf "list sets (%.0f%% separation): %d over %d references\n"
        (100. *. separation)
        (List.length sets.Analysis.List_sets.sets)
        sets.Analysis.List_sets.stream_length;
      List.iter
        (fun frac ->
           Printf.printf "  largest %d sets cover %.0f%% of references\n"
             (Analysis.List_sets.sets_for_coverage sets frac) (100. *. frac))
        [ 0.5; 0.8; 0.95 ];
      let stream = Analysis.List_sets.set_id_stream ~separation pre in
      let lru = Analysis.Lru_stack.analyze stream in
      List.iter
        (fun k ->
           Printf.printf "LRU stack depth %2d captures %.1f%% of set accesses\n" k
             (100. *. Analysis.Lru_stack.hit_fraction lru k))
        [ 1; 2; 4; 8 ];
      let ch = Analysis.Chaining.analyze pre in
      Printf.printf "chaining: car %.1f%%, cdr %.1f%%\n" (Analysis.Chaining.car_pct ch)
        (Analysis.Chaining.cdr_pct ch);
      Ok ()
  in
  let term =
    Term.(term_result (const action $ trace_source $ trace_file $ separation))
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Chapter 3 locality analyses over a trace") term

(* ---- simulate ---- *)

let simulate_cmd =
  let size =
    Arg.(value & opt int 2048 & info [ "size" ] ~doc:"LPT size in entries.")
  in
  let policy =
    Arg.(value & opt (enum [ ("one", Core.Lpt.Compress_one); ("all", Core.Lpt.Compress_all) ])
           Core.Lpt.Compress_one
         & info [ "policy" ] ~doc:"Pseudo-overflow compression policy: one|all.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let cache_lines =
    Arg.(value & opt (some int) None
         & info [ "cache" ] ~doc:"Also run an LRU cache with this many lines.")
  in
  let line_size =
    Arg.(value & opt int 1 & info [ "line" ] ~doc:"Cache line size in cells.")
  in
  let split = Arg.(value & flag & info [ "split-counts" ] ~doc:"EP-side stack counts.") in
  let find_knee =
    Arg.(value & flag & info [ "knee" ] ~doc:"Search for the minimum overflow-free size.")
  in
  let with_metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Collect run metrics and print the Prometheus exposition afterwards.")
  in
  let action workload file size policy seed cache_lines line_size split find_knee
      with_metrics =
    match load_preprocessed workload file with
    | Error _ as e -> e
    | Ok pre ->
      let config =
        { Core.Simulator.default_config with
          table_size = size; policy; seed; split_counts = split;
          cache =
            Option.map
              (fun lines -> { Core.Simulator.cache_lines = lines; cache_line_size = line_size })
              cache_lines }
      in
      let metrics = if with_metrics then Some (Obs.Registry.create ()) else None in
      if find_knee then begin
        let k, stats = Core.Simulator.min_table_size ?metrics config pre in
        Printf.printf "knee: %d entries (peak usage %d, no overflow)\n" k
          stats.Core.Simulator.peak_lpt
      end
      else begin
        let s = Core.Simulator.run ?metrics config pre in
        Printf.printf "events %d; peak LPT %d, average %.1f\n" s.Core.Simulator.events
          s.Core.Simulator.peak_lpt s.Core.Simulator.avg_lpt;
        Printf.printf "LPT: %d hits, %d misses (hit rate %.2f%%)\n"
          s.Core.Simulator.lpt.Core.Lpt.hits s.Core.Simulator.lpt.Core.Lpt.misses
          (100. *. Core.Simulator.lpt_hit_rate s);
        Printf.printf "refcount ops %d (EP-side %d); gets %d; frees %d\n"
          s.Core.Simulator.lpt.Core.Lpt.refops s.Core.Simulator.lpt.Core.Lpt.ep_refops
          s.Core.Simulator.lpt.Core.Lpt.gets s.Core.Simulator.lpt.Core.Lpt.frees;
        Printf.printf "overflows: %d pseudo (%d compressions), overflow-mode events %d\n"
          s.Core.Simulator.lpt.Core.Lpt.pseudo_overflows
          s.Core.Simulator.lpt.Core.Lpt.compressions s.Core.Simulator.overflow_events;
        (match config.cache with
         | Some _ ->
           Printf.printf "cache: %d hits, %d misses (hit rate %.2f%%)\n"
             s.Core.Simulator.cache_hits s.Core.Simulator.cache_misses
             (100. *. Core.Simulator.cache_hit_rate s)
         | None -> ())
      end;
      (match metrics with
       | Some reg -> print_newline (); print_string (Obs.Expo.of_registry reg)
       | None -> ());
      Ok ()
  in
  let term =
    Term.(term_result
            (const action $ trace_source $ trace_file $ size $ policy $ seed
             $ cache_lines $ line_size $ split $ find_knee $ with_metrics))
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Trace-driven SMALL simulation (Chapter 5)") term

(* ---- serve / submit ---- *)

let socket_arg =
  let doc = "Unix domain socket path for the job service." in
  Arg.(value & opt string "smalld.sock" & info [ "socket" ] ~doc)

let load_fault_plan = function
  | None -> Ok None
  | Some path ->
    (match Fault.Plan.load path with
     | Ok plan -> Ok (Some plan)
     | Error msg -> Error (`Msg ("bad fault plan: " ^ msg)))

let serve_cmd =
  let workers =
    Arg.(value & opt int (max 1 (Domain.recommended_domain_count () - 1))
         & info [ "workers" ] ~doc:"Worker domains in the pool.")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ] ~doc:"Queue capacity; further submissions are rejected.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ]
             ~doc:"Persist the result cache here in the legacy one-file-per-entry \
                   layout (omit for memory-only).")
  in
  let store_dir =
    Arg.(value & opt (some string) None
         & info [ "store-dir" ]
             ~doc:"Persist the result cache here in the crash-consistent \
                   log-structured store (group-committed segment log with recovery \
                   replay and compaction).  Legacy --cache-dir entries found in the \
                   directory are migrated on read.  Exclusive with --cache-dir.")
  in
  let segment_bytes =
    Arg.(value & opt int (1 lsl 22)
         & info [ "segment-bytes" ] ~docv:"BYTES"
             ~doc:"Rotate the store's active segment at this size (with --store-dir).")
  in
  let compact_ratio =
    Arg.(value & opt float 0.5
         & info [ "compact-ratio" ] ~docv:"R"
             ~doc:"Compact the store when dead bytes exceed this fraction of the \
                   log (with --store-dir).")
  in
  let stdio =
    Arg.(value & flag
         & info [ "stdio" ] ~doc:"Serve one session on stdin/stdout instead of a socket.")
  in
  let metrics_file =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Write the Prometheus exposition here after every handled request \
                   (atomically, so a scraper can read it at any time).")
  in
  let fault_plan =
    Arg.(value & opt (some string) None
         & info [ "fault-plan" ] ~docv:"FILE"
             ~doc:"Inject faults on the seeded schedule in this plan file \
                   (see Fault.Plan; for robustness testing).")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~doc:"Re-run a failed job up to this many times.")
  in
  let shard_id =
    Arg.(value & opt (some string) None
         & info [ "shard-id" ] ~docv:"ID"
             ~doc:"Name this service as a cluster shard: every reply line then \
                   carries a shard field (used by `smallsim route`).")
  in
  let action socket workers queue cache_dir store_dir segment_bytes compact_ratio
      stdio metrics_file fault_plan retries shard_id =
    if workers < 1 then Error (`Msg "--workers must be at least 1")
    else if queue < 1 then Error (`Msg "--queue must be at least 1")
    else if retries < 0 then Error (`Msg "--retries must be non-negative")
    else if cache_dir <> None && store_dir <> None then
      Error (`Msg "--cache-dir and --store-dir are exclusive")
    else if segment_bytes < 4096 then
      Error (`Msg "--segment-bytes must be at least 4096")
    else if compact_ratio < 0.0 || compact_ratio > 1.0 then
      Error (`Msg "--compact-ratio must be in [0,1]")
    else begin
      match load_fault_plan fault_plan with
      | Error _ as e -> e
      | Ok fault ->
        let t =
          Server.Service.create ?cache_dir ?metrics_file ?fault ?shard_id ~retries
            ?store_dir ~segment_bytes ~compact_ratio
            ~workers ~queue_capacity:queue ()
        in
        Fun.protect
          ~finally:(fun () -> Server.Service.shutdown t)
          (fun () ->
             if stdio then ignore (Server.Service.serve_channels t stdin stdout)
             else begin
               Printf.eprintf "smalld: %d workers, queue %d, listening on %s\n%!"
                 workers queue socket;
               Server.Service.serve_socket t ~path:socket
             end);
        Ok ()
    end
  in
  let term =
    Term.(term_result
            (const action $ socket_arg $ workers $ queue $ cache_dir $ store_dir
             $ segment_bytes $ compact_ratio $ stdio
             $ metrics_file $ fault_plan $ retries $ shard_id))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the simulation-job service (newline-delimited requests, JSON results)")
    term

let submit_cmd =
  let request =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"REQUEST"
             ~doc:"A job s-expression, e.g. (simulate (workload slang) (size 512)). \
                   Omitted: requests are read from stdin, one per line.")
  in
  let connect_retries =
    Arg.(value & opt int 5
         & info [ "connect-retries" ] ~docv:"N"
             ~doc:"Retry a refused connection up to $(docv) times with \
                   decorrelated-jitter backoff (50ms base, 1s cap) — covers the \
                   window where the server is still binding its socket, without \
                   letting many clients retry in lockstep.  0 fails fast.")
  in
  (* A server that is starting up (socket file not yet bound, or bound
     but not yet listening) answers ENOENT/ECONNREFUSED; those — and only
     those — are worth retrying.  EACCES, a directory, etc. are not.

     Backoff is decorrelated jitter: sleep the current delay, then draw
     the next uniformly from [base, 3*delay] (capped).  A herd of
     clients started together — exactly the crash-restart case — spreads
     out instead of hammering the socket on synchronized beats. *)
  let connect_base = 0.05 in
  let rec connect_backoff rng socket retries delay =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match e with
       | Unix.ENOENT | Unix.ECONNREFUSED when retries > 0 ->
         Unix.sleepf delay;
         let span = Float.max 0.0 ((delay *. 3.0) -. connect_base) in
         let next =
           Float.min 1.0 (connect_base +. (Util.Rng.float rng *. span))
         in
         connect_backoff rng socket (retries - 1) next
       | _ ->
         Error
           (`Msg
              (Printf.sprintf "cannot connect to %s: %s (is `smallsim serve` running?)"
                 socket (Unix.error_message e))))
  in
  let action socket connect_retries request =
    if connect_retries < 0 then Error (`Msg "--connect-retries must be non-negative")
    else
    let requests =
      match request with
      | Some r -> [ r ]
      | None ->
        let rec loop acc =
          match input_line stdin with
          | l -> loop (l :: acc)
          | exception End_of_file -> List.rev acc
        in
        loop []
    in
    let rng = Util.Rng.create ~seed:(Unix.getpid ()) in
    match connect_backoff rng socket connect_retries connect_base with
    | Error _ as e -> e
    | Ok fd ->
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      List.iter (fun l -> output_string oc l; output_char oc '\n') requests;
      flush oc;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      (try
         while true do
           print_endline (input_line ic)
         done
       with End_of_file -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Ok ()
  in
  let term = Term.(term_result (const action $ socket_arg $ connect_retries $ request)) in
  Cmd.v (Cmd.info "submit" ~doc:"Send job requests to a running service") term

(* ---- route / loadgen ---- *)

let placement_arg =
  Arg.(value
       & opt (enum [ ("cache", Cluster.Router.Cache_aware);
                     ("hash", Cluster.Router.Hash_only);
                     ("uniform", Cluster.Router.Uniform) ])
           Cluster.Router.Cache_aware
       & info [ "placement" ]
           ~doc:"Job placement: $(b,cache) (shard owning the cached result, ring \
                 fallback), $(b,hash) (ring only), or $(b,uniform) (round-robin \
                 baseline).")

let shards_arg =
  Arg.(value & opt int 2
       & info [ "shards" ] ~docv:"N" ~doc:"Backend shards to spawn.")

let shard_workers_arg =
  Arg.(value & opt int 2
       & info [ "shard-workers" ] ~doc:"Worker domains per spawned shard.")

let shard_queue_arg =
  Arg.(value & opt int 64
       & info [ "shard-queue" ] ~doc:"Queue capacity per spawned shard.")

let batch_max_arg =
  Arg.(value & opt int 16
       & info [ "batch-max" ] ~doc:"Micro-batch bound per shard round trip.")

let steal_min_arg =
  Arg.(value & opt int 2
       & info [ "steal-min" ]
           ~doc:"Queue length at which an idle shard steals work; 0 disables.")

let vnodes_arg =
  Arg.(value & opt int 64
       & info [ "vnodes" ] ~doc:"Virtual nodes per shard on the hash ring.")

let health_interval_arg =
  Arg.(value & opt float 0.25
       & info [ "health-interval" ] ~doc:"Seconds between shard health checks.")

let down_after_arg =
  Arg.(value & opt float 2.0
       & info [ "down-after" ]
           ~doc:"Declare an idle shard dead after a ping goes unanswered this long.")

(* The router's resilience knobs, shared by route and loadgen.  Collected
   into one record so both actions take a single validated argument. *)
type resilience = {
  r_fault : Fault.Plan.t option;
  r_hedge_quantile : float;
  r_hedge_floor : float;
  r_breaker : Cluster.Breaker.config;
  r_stuck_after : float;
  r_revive : bool;
  r_metrics_file : string option;
}

let resilience_term =
  let fault_plan =
    Arg.(value & opt (some string) None
         & info [ "fault-plan" ] ~docv:"FILE"
             ~doc:"Inject seeded network/process chaos on the shard wires from \
                   this plan file: sites $(b,net.<sid>) draw delay, drop, dup, \
                   reorder and one-way partitions; $(b,proc.<sid>) draws \
                   slow-shard stalls and crash-restarts (see Fault.Plan).")
  in
  let hedge_quantile =
    Arg.(value & opt float 0.0
         & info [ "hedge-quantile" ] ~docv:"Q"
             ~doc:"Hedge an in-flight job once it outlives twice this per-shard \
                   latency quantile (e.g. 0.95): re-issue it to the next ring \
                   owner, first answer wins, the loser is cancelled.  0 disables.")
  in
  let hedge_floor =
    Arg.(value & opt float 0.01
         & info [ "hedge-floor" ] ~docv:"S"
             ~doc:"Never hedge a job that has been in flight for less than this \
                   many seconds.")
  in
  let breaker_failures =
    Arg.(value & opt int 4
         & info [ "breaker-failures" ] ~docv:"N"
             ~doc:"Consecutive failures that trip a shard's circuit breaker open.")
  in
  let breaker_cooldown =
    Arg.(value & opt float 1.0
         & info [ "breaker-cooldown" ] ~docv:"S"
             ~doc:"Seconds an open breaker waits before admitting one half-open \
                   trial request.")
  in
  let breaker_rtt =
    Arg.(value & opt (some float) None
         & info [ "breaker-rtt-limit" ] ~docv:"S"
             ~doc:"Count a shard reply or probe slower than this as a breaker \
                   failure (default: no limit).")
  in
  let breaker_queue =
    Arg.(value & opt int 0
         & info [ "breaker-queue-limit" ] ~docv:"N"
             ~doc:"Open a shard's breaker while its queue is deeper than this; \
                   0 disables.")
  in
  let stuck_after =
    Arg.(value & opt float 1.0
         & info [ "stuck-after" ] ~docv:"S"
             ~doc:"Sync-ping a silent shard after this many seconds in flight to \
                   detect dropped requests and re-send them.")
  in
  let revive =
    Arg.(value & flag
         & info [ "revive" ]
             ~doc:"Re-adopt crash-restarted shards: respawn dead spawned \
                   children and re-connect returning socket backends instead of \
                   leaving them down.")
  in
  let metrics_file =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Write the router's Prometheus exposition here (atomic \
                   rename), twice a second and at shutdown.")
  in
  let combine fault_plan hq hf bf bc brtt bq sa revive metrics_file =
    if hq < 0.0 || hq >= 1.0 then Error (`Msg "--hedge-quantile must be in [0,1)")
    else if hf < 0.0 then Error (`Msg "--hedge-floor must be non-negative")
    else if bf < 1 then Error (`Msg "--breaker-failures must be at least 1")
    else if bc <= 0.0 then Error (`Msg "--breaker-cooldown must be positive")
    else if (match brtt with Some r -> r <= 0.0 | None -> false) then
      Error (`Msg "--breaker-rtt-limit must be positive")
    else if bq < 0 then Error (`Msg "--breaker-queue-limit must be non-negative")
    else if sa <= 0.0 then Error (`Msg "--stuck-after must be positive")
    else
      match load_fault_plan fault_plan with
      | Error _ as e -> e
      | Ok fault ->
        Ok { r_fault = fault; r_hedge_quantile = hq; r_hedge_floor = hf;
             r_breaker =
               { Cluster.Breaker.failures = bf; cooldown = bc;
                 rtt_limit = Option.value ~default:infinity brtt;
                 queue_limit = bq };
             r_stuck_after = sa; r_revive = revive; r_metrics_file = metrics_file }
  in
  Term.(const combine $ fault_plan $ hedge_quantile $ hedge_floor
        $ breaker_failures $ breaker_cooldown $ breaker_rtt $ breaker_queue
        $ stuck_after $ revive $ metrics_file)

let make_router ~res ?(vnodes = 64) ~batch_max ~steal_min ~placement ~shards () =
  Cluster.Router.create ~vnodes ~batch_max ~steal_min ~placement
    ?fault:res.r_fault ~hedge_quantile:res.r_hedge_quantile
    ~hedge_floor:res.r_hedge_floor ~breaker:res.r_breaker
    ~stuck_after:res.r_stuck_after ~revive:res.r_revive
    ?metrics_file:res.r_metrics_file ~shards ()

(* Spawned shards are children of this very binary serving the wire
   protocol on stdio — no sockets to coordinate, and a SIGKILLed child
   is indistinguishable from a crashed remote shard. *)
let spawned_shards ~shards ~workers ~queue ~cache_dir ~store_dir =
  List.init shards (fun i ->
      let sid = Printf.sprintf "s%d" i in
      let argv =
        [ Sys.executable_name; "serve"; "--stdio"; "--shard-id"; sid;
          "--workers"; string_of_int workers; "--queue"; string_of_int queue ]
        @ (match cache_dir with
           | Some dir -> [ "--cache-dir"; Filename.concat dir sid ]
           | None -> [])
        @ (match store_dir with
           | Some dir -> [ "--store-dir"; Filename.concat dir sid ]
           | None -> [])
      in
      (sid, Cluster.Router.Spawn (Array.of_list argv)))

let route_cmd =
  let socket =
    Arg.(value & opt string "smallroute.sock"
         & info [ "socket" ] ~doc:"Unix domain socket the router listens on.")
  in
  let backends =
    Arg.(value & opt_all string []
         & info [ "backend" ] ~docv:"SOCKET"
             ~doc:"Route to an already-running smalld at this socket instead of \
                   spawning shards (repeatable; shard ids are b0, b1, ...).")
  in
  let stdio =
    Arg.(value & flag
         & info [ "stdio" ] ~doc:"Serve one routing session on stdin/stdout.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ]
             ~doc:"Per-shard result-cache root for spawned shards (shard id is \
                   appended); omit for memory-only shards.")
  in
  let store_dir =
    Arg.(value & opt (some string) None
         & info [ "store-dir" ]
             ~doc:"Per-shard log-structured store root for spawned shards (shard \
                   id is appended).  Exclusive with --cache-dir.")
  in
  let action socket backends stdio shards workers queue cache_dir store_dir
      placement vnodes batch_max steal_min health_interval down_after res =
    if shards < 1 then Error (`Msg "--shards must be at least 1")
    else if workers < 1 then Error (`Msg "--shard-workers must be at least 1")
    else if queue < 1 then Error (`Msg "--shard-queue must be at least 1")
    else if batch_max < 1 then Error (`Msg "--batch-max must be at least 1")
    else if steal_min < 0 then Error (`Msg "--steal-min must be non-negative")
    else if health_interval <= 0.0 then
      Error (`Msg "--health-interval must be positive")
    else if down_after <= 0.0 then Error (`Msg "--down-after must be positive")
    else if cache_dir <> None && store_dir <> None then
      Error (`Msg "--cache-dir and --store-dir are exclusive")
    else begin
      match res with
      | Error _ as e -> e
      | Ok res ->
      let shard_list =
        match backends with
        | [] -> spawned_shards ~shards ~workers ~queue ~cache_dir ~store_dir
        | paths ->
          List.mapi
            (fun i p -> (Printf.sprintf "b%d" i, Cluster.Router.Socket p))
            paths
      in
      let router =
        make_router ~res ~vnodes ~batch_max ~steal_min ~placement
          ~shards:shard_list ()
      in
      let health =
        Cluster.Health.start ~interval:health_interval ~down_after router
      in
      Fun.protect
        ~finally:(fun () ->
            Cluster.Health.stop health;
            Cluster.Router.shutdown router)
        (fun () ->
           if stdio then ignore (Cluster.Router.serve_channels router stdin stdout)
           else begin
             Printf.eprintf "smallroute: %d shards (%s), listening on %s\n%!"
               (List.length shard_list)
               (String.concat ", " (Cluster.Router.shard_ids router))
               socket;
             Cluster.Router.serve_socket router ~path:socket
           end);
      Ok ()
    end
  in
  let term =
    Term.(term_result
            (const action $ socket $ backends $ stdio $ shards_arg
             $ shard_workers_arg $ shard_queue_arg $ cache_dir $ store_dir
             $ placement_arg
             $ vnodes_arg $ batch_max_arg $ steal_min_arg $ health_interval_arg
             $ down_after_arg $ resilience_term))
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Front a sharded smalld cluster: consistent-hash, cache-aware routing \
             with health-checked failover and work stealing")
    term

let loadgen_cmd =
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Drive an already-running server (smalld or router) at this \
                   socket instead of spawning a cluster.")
  in
  let requests =
    Arg.(value & opt int 512 & info [ "requests" ] ~doc:"Total requests to issue.")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Concurrent client domains.")
  in
  let universe =
    Arg.(value & opt int 64
         & info [ "universe" ] ~doc:"Distinct job configurations to draw from.")
  in
  let theta =
    Arg.(value & opt float 0.99
         & info [ "theta" ] ~doc:"Zipfian skew (0 = uniform popularity).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let open_rate =
    Arg.(value & opt (some float) None
         & info [ "open" ] ~docv:"RATE"
             ~doc:"Open-loop mode at this aggregate req/s (latency measured from \
                   intended arrival); default is closed-loop.")
  in
  let workload =
    Arg.(value & opt string "slang"
         & info [ "workload" ] ~doc:"Built-in workload the jobs simulate.")
  in
  let size =
    Arg.(value & opt int 256 & info [ "size" ] ~doc:"Simulated LPT size knob.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as one JSON object.")
  in
  let kill_after =
    Arg.(value & opt (some int) None
         & info [ "kill-after" ] ~docv:"K"
             ~doc:"Fault drill: SIGKILL one spawned shard after the K-th reply; \
                   the run must complete degraded on the survivors.")
  in
  let kill_shard =
    Arg.(value & opt (some string) None
         & info [ "kill-shard" ] ~docv:"ID"
             ~doc:"Which shard --kill-after kills (default: the last one).")
  in
  let store_dir =
    Arg.(value & opt (some string) None
         & info [ "store-dir" ]
             ~doc:"Per-shard log-structured store root for spawned shards (shard \
                   id is appended) — results survive a crash-restart, so a \
                   revived shard re-serves them cached.")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"S"
             ~doc:"Attach a (deadline $(docv)) budget to every job; the budget \
                   propagates across hops and an overrun earns the typed \
                   timeout reply (tallied separately from failures).")
  in
  let action socket shards workers queue placement batch_max steal_min requests
      clients universe theta seed open_rate workload size json kill_after
      kill_shard store_dir deadline health_interval down_after res =
    if requests < 1 then Error (`Msg "--requests must be at least 1")
    else if clients < 1 then Error (`Msg "--clients must be at least 1")
    else if universe < 1 then Error (`Msg "--universe must be at least 1")
    else if theta < 0.0 then Error (`Msg "--theta must be non-negative")
    else if (match deadline with Some d -> d <= 0.0 | None -> false) then
      Error (`Msg "--deadline must be positive")
    else if health_interval <= 0.0 then
      Error (`Msg "--health-interval must be positive")
    else if down_after <= 0.0 then Error (`Msg "--down-after must be positive")
    else if not (List.mem workload workload_names) then
      Error (`Msg (Printf.sprintf "unknown workload %s (have: %s)" workload
                     (String.concat ", " workload_names)))
    else begin
      match res with
      | Error _ as e -> e
      | Ok res ->
      let shard_list =
        match socket with
        | Some path -> [ ("remote", Cluster.Router.Socket path) ]
        | None ->
          spawned_shards ~shards ~workers ~queue ~cache_dir:None ~store_dir
      in
      let router =
        make_router ~res ~batch_max ~steal_min ~placement ~shards:shard_list ()
      in
      let health =
        Cluster.Health.start ~interval:health_interval ~down_after router
      in
      let cfg =
        { Cluster.Loadgen.requests; clients; universe; theta; seed;
          mode = (match open_rate with None -> Cluster.Loadgen.Closed
                                     | Some r -> Cluster.Loadgen.Open r);
          workload; size; deadline }
      in
      let after =
        Option.map
          (fun k ->
             let victim =
               match kill_shard with
               | Some sid -> sid
               | None -> List.hd (List.rev (Cluster.Router.shard_ids router))
             in
             (k, fun () -> Cluster.Router.kill router victim))
          kill_after
      in
      let report =
        Fun.protect
          ~finally:(fun () -> Cluster.Health.stop health)
          (fun () ->
             Cluster.Loadgen.run ?after
               ~submit:(Cluster.Router.submit_line router) cfg)
      in
      let router_stats = Cluster.Router.stats_json router in
      Cluster.Router.shutdown router;
      if json then
        print_endline
          (Server.Json.to_string
             (Server.Json.Obj
                [ ("loadgen", Cluster.Loadgen.report_json report);
                  ("router", router_stats) ]))
      else begin
        print_string (Cluster.Loadgen.report_text report);
        Printf.printf "router     %s\n" (Server.Json.to_string router_stats)
      end;
      Ok ()
    end
  in
  let term =
    Term.(term_result
            (const action $ socket $ shards_arg $ shard_workers_arg
             $ shard_queue_arg $ placement_arg $ batch_max_arg $ steal_min_arg
             $ requests $ clients $ universe $ theta $ seed $ open_rate
             $ workload $ size $ json $ kill_after $ kill_shard $ store_dir
             $ deadline $ health_interval_arg $ down_after_arg
             $ resilience_term))
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Zipfian YCSB-style load harness: closed/open loop against a spawned \
             cluster or a running server, reporting p50/p99/p999")
    term

(* ---- workloads ---- *)

let workloads_cmd =
  let action () =
    List.iter
      (fun w ->
         Printf.printf "%-8s %s\n" w.Workloads.Registry.name
           w.Workloads.Registry.description)
      Workloads.Registry.all;
    Ok ()
  in
  let term = Term.(term_result (const action $ const ())) in
  Cmd.v (Cmd.info "workloads" ~doc:"List the built-in benchmark workloads") term

(* Error discipline: every failure — bad arguments, a missing or corrupt
   trace, an unreadable fault plan, any uncaught exception — exits 2
   with a single line on stderr.  Scripts and CI can rely on it. *)
let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) (String.trim s)

let () =
  Printexc.record_backtrace false;
  let doc = "SMALL: a structured memory access architecture for Lisp (reproduction)" in
  let info = Cmd.info "smallsim" ~version:"1.0.0" ~doc ~exits:Cmd.Exit.defaults in
  let group =
    Cmd.group info
      [ run_cmd; compile_cmd; trace_cmd; analyze_cmd; simulate_cmd;
        serve_cmd; submit_cmd; route_cmd; loadgen_cmd; workloads_cmd ]
  in
  match Cmd.eval ~catch:false group with
  | 0 -> exit 0
  | _ -> exit 2
  | exception e ->
    Printf.eprintf "smallsim: %s\n" (one_line (Printexc.to_string e));
    exit 2
